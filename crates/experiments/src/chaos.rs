//! Chaos experiments: deterministic fault injection over the real
//! directory/allocator stack, measuring graceful degradation.
//!
//! Each scenario builds a seeded [`FaultPlan`], drives the SAP
//! [`Testbed`] (the real `SessionDirectory` protocol code — poll,
//! handle_packet, three-phase clash recovery) through it, and reports
//! robustness metrics:
//!
//! * **partition_heal** — two sides of a healed partition hold the same
//!   address; how long is the duplicate-address exposure window after
//!   the heal, and does the scope reconverge?
//! * **crash_restart** — a node loses its announcement cache; how long
//!   until the periodic re-announcements rebuild it, relative to the
//!   announcement period?
//! * **burst_loss** — a timed 90%-loss window on top of the default 2%
//!   channel; does the exponential back-off still converge the scope?
//! * **storm** — a forged-announcement flood plus bit-flip corruption;
//!   do real sessions still propagate and can nodes still allocate?
//! * **exhaustion** — a full allocator band, with and without the
//!   [`sdalloc_core::Allocator::allocate_or_widen`] fallback; the
//!   strict path must reproduce failures the graceful path survives.
//!
//! Everything is seeded: the same seed yields a byte-identical report,
//! which is what makes a fault reproducible enough to debug.
//!
//! One scenario lives outside the deterministic matrix:
//! **runtime_soak** ([`runtime_soak`]) re-runs the crash/restart story
//! against the *threaded* production runtime — real agent threads on
//! the loopback bus, reader threads on the lock-free snapshot path —
//! so its report is wall-clock timed and is written as a separate
//! sidecar (`runtime_soak*.json`), never folded into the byte-stable
//! matrix report.

use sdalloc_core::{AddrSpace, InformedRandomAllocator, StaticIpr};
use sdalloc_sap::directory::{
    DirectoryConfig, DirectoryEvent, GovernorConfig, ReconcileConfig, SessionDirectory,
};
use sdalloc_sap::sdp::Media;
use sdalloc_sap::testbed::Testbed;
use sdalloc_sim::{Channel, CorruptionMode, FaultPlan, SimDuration, SimRng, SimTime};
use std::net::Ipv4Addr;

/// How many repeats of each scenario to run.
fn runs(smoke: bool) -> usize {
    if smoke {
        2
    } else {
        10
    }
}

fn media() -> Vec<Media> {
    vec![Media {
        kind: "audio".into(),
        port: 5004,
        proto: "RTP/AVP".into(),
        format: 0,
    }]
}

fn configs(n: usize, space: u32) -> Vec<DirectoryConfig> {
    (0..n)
        .map(|i| {
            let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
            cfg.space = AddrSpace::abstract_space(space);
            cfg
        })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Outcome of the partition-heal scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionHeal {
    /// Scenario repeats.
    pub runs: usize,
    /// Runs where a same-address duplicate could be forced at all.
    pub duplicated: usize,
    /// Runs ending with the two sessions on distinct groups.
    pub reconverged: usize,
    /// Seconds from heal until the losing session moved, per resolved
    /// run (0 when a third party resolved it before the heal).
    pub exposure_s: Vec<f64>,
    /// Total session moves across all runs.
    pub moves: usize,
    /// Total third-party defences armed across all runs.
    pub defences: usize,
}

/// One partition-heal instance: isolate node 1 (node 2 sits on node
/// 0's side, so no third party can resolve the clash early), force the
/// two sides onto the same address, and run to the horizon.  `heal_at:
/// None` leaves the partition up past the horizon — the reconvergence
/// property then fails *by construction*, which is what the
/// flight-recorder dump path is exercised against.  Returns `None`
/// when no duplicate could be forced.
fn heal_instance(seed: u64, k: u64, heal_at: Option<SimTime>) -> Option<Testbed> {
    let heal = heal_at.unwrap_or(SimTime::from_secs(1_000_000));
    let mut tb = Testbed::new(
        configs(3, 2),
        || Box::new(InformedRandomAllocator),
        Channel::mbone_default(),
        seed ^ k << 16,
    )
    .with_faults(FaultPlan::new().with_partition(SimTime::ZERO, heal, vec![0, 2], vec![1]));
    let mut rng0 = SimRng::new(seed ^ (k << 8));
    let mut rng1 = SimRng::new(seed ^ (k << 8) ^ 1);
    // Force the partitioned sides onto the same address (space of 2:
    // a few tries always suffice).
    let mut forced = false;
    for _ in 0..64 {
        let now = tb.now();
        let (Ok(id0), Ok(id1)) = (
            tb.directory_mut(0)
                .create_session(now, "a", 127, media(), &mut rng0),
            tb.directory_mut(1)
                .create_session(now, "b", 127, media(), &mut rng1),
        ) else {
            break;
        };
        let g0 = tb
            .directory(0)
            .own_sessions()
            .next()
            .map(|(_, s)| s.desc.group);
        let g1 = tb
            .directory(1)
            .own_sessions()
            .next()
            .map(|(_, s)| s.desc.group);
        if g0.is_some() && g0 == g1 {
            forced = true;
            break;
        }
        tb.directory_mut(0).withdraw_session(id0);
        tb.directory_mut(1).withdraw_session(id1);
    }
    if !forced {
        return None;
    }
    tb.kick(0);
    tb.kick(1);
    tb.run_until(SimTime::from_secs(1_340));
    Some(tb)
}

/// The group each node's (single) own session currently sits on.
fn own_group(tb: &Testbed, node: usize) -> Option<std::net::Ipv4Addr> {
    tb.directory(node)
        .own_sessions()
        .next()
        .map(|(_, s)| s.desc.group)
}

/// Partition → duplicate allocation → heal → measure the duplicate
/// exposure window and reconvergence, all under a [`FaultPlan`]
/// partition window rather than hand-driven blocking.
pub fn partition_heal(seed: u64, smoke: bool) -> PartitionHeal {
    let runs = runs(smoke);
    let heal_at = SimTime::from_secs(40);
    let mut out = PartitionHeal {
        runs,
        duplicated: 0,
        reconverged: 0,
        exposure_s: Vec::new(),
        moves: 0,
        defences: 0,
    };
    for k in 0..runs {
        let Some(tb) = heal_instance(seed, k as u64, Some(heal_at)) else {
            continue;
        };
        out.duplicated += 1;
        let g0 = tb
            .directory(0)
            .own_sessions()
            .next()
            .map(|(_, s)| s.desc.group);
        let g1 = tb
            .directory(1)
            .own_sessions()
            .next()
            .map(|(_, s)| s.desc.group);
        if g0.is_some() && g1.is_some() && g0 != g1 {
            out.reconverged += 1;
            if let Some(m) = tb
                .log
                .iter()
                .find(|e| matches!(e.event, DirectoryEvent::Moved { .. }))
            {
                out.exposure_s
                    .push(m.at.saturating_since(heal_at).as_secs_f64());
            }
        }
        out.moves += tb
            .log
            .iter()
            .filter(|e| matches!(e.event, DirectoryEvent::Moved { .. }))
            .count();
        out.defences += tb
            .log
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    DirectoryEvent::Clash {
                        action: sdalloc_core::ClashAction::ThirdPartyArmed { .. },
                        ..
                    }
                )
            })
            .count();
    }
    out
}

/// Outcome of the crash-restart scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashRestart {
    /// Scenario repeats.
    pub runs: usize,
    /// Runs where the restarted node re-heard the survivor's session.
    pub rebuilt: usize,
    /// Seconds from restart to the first re-heard announcement.
    pub rebuild_s: Vec<f64>,
    /// The background announcement period the rebuild time is bounded
    /// by (the schedule cap), in seconds.
    pub announce_cap_s: f64,
}

/// Crash a node mid-run, restart it with an empty cache, and measure
/// how long the surviving announcer takes to repopulate it.
pub fn crash_restart(seed: u64, smoke: bool) -> CrashRestart {
    let runs = runs(smoke);
    // Shorten the announcement period so rebuild times are measured
    // against a few periods, not the paper's 10-minute background rate.
    let cap = SimDuration::from_secs(30);
    let crash_at = SimTime::from_secs(60);
    let restart_at = SimTime::from_secs(90);
    let mut out = CrashRestart {
        runs,
        rebuilt: 0,
        rebuild_s: Vec::new(),
        announce_cap_s: cap.as_secs_f64(),
    };
    for k in 0..runs {
        let mut cfgs = configs(2, 256);
        for cfg in &mut cfgs {
            cfg.schedule.cap = cap;
        }
        let mut tb = Testbed::new(
            cfgs,
            || Box::new(InformedRandomAllocator),
            Channel::mbone_default(),
            seed ^ (k as u64) << 17,
        )
        .with_faults(FaultPlan::new().with_crash(1, crash_at, Some(restart_at)));
        let mut rng = SimRng::new(seed ^ ((k as u64) << 9));
        let now = tb.now();
        if tb
            .directory_mut(0)
            .create_session(now, "survivor", 127, media(), &mut rng)
            .is_err()
        {
            continue;
        }
        tb.kick(0);
        tb.run_until(SimTime::from_secs(240));
        if let Some(e) = tb.log.iter().find(|e| {
            e.node == 1 && e.at >= restart_at && matches!(e.event, DirectoryEvent::Heard(_))
        }) {
            out.rebuilt += 1;
            out.rebuild_s
                .push(e.at.saturating_since(restart_at).as_secs_f64());
        }
    }
    out
}

/// Outcome of the crash-restart scenario with digest reconciliation,
/// against the plain announce-cycle baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashRestartRecon {
    /// Scenario repeats (per mode).
    pub runs: usize,
    /// Sessions the survivor holds — the restarted cache must re-learn
    /// every one of them, not just the first.
    pub sessions: usize,
    /// Baseline runs that fully rebuilt before the horizon.
    pub baseline_rebuilt: usize,
    /// Seconds from restart until the *last* session was re-heard,
    /// baseline (announce cycle only).
    pub baseline_full_rebuild_s: Vec<f64>,
    /// Reconciliation runs that fully rebuilt before the horizon.
    pub recon_rebuilt: usize,
    /// Seconds from restart until the last session was re-heard with
    /// the digest exchange enabled.
    pub recon_full_rebuild_s: Vec<f64>,
}

impl CrashRestartRecon {
    /// Exposure-window reduction: baseline mean over recon mean.
    pub fn speedup(&self) -> f64 {
        let r = mean(&self.recon_full_rebuild_s);
        if r <= 0.0 {
            0.0
        } else {
            mean(&self.baseline_full_rebuild_s) / r
        }
    }
}

/// One crash/restart instance: the survivor owns `sessions` sessions,
/// node 1 crashes and restarts, and the run measures seconds from
/// restart until node 1 has re-heard all of them (`None`: never did).
fn crash_restart_recon_instance(seed: u64, k: u64, recon: bool, sessions: usize) -> Option<f64> {
    let cap = SimDuration::from_secs(30);
    let crash_at = SimTime::from_secs(60);
    // Restart just *after* a periodic announce instant (the cap-30
    // schedule fires at 95 s), so the announce-cycle baseline pays a
    // representative near-full period, not a lucky phase alignment.
    let restart_at = SimTime::from_secs(96);
    let mut cfgs = configs(2, 256);
    for cfg in &mut cfgs {
        cfg.schedule.cap = cap;
        if recon {
            cfg.reconcile = Some(ReconcileConfig::default());
        }
    }
    let mut tb = Testbed::new(
        cfgs,
        || Box::new(InformedRandomAllocator),
        Channel::mbone_default(),
        seed ^ (k << 20),
    )
    .with_faults(FaultPlan::new().with_crash(1, crash_at, Some(restart_at)));
    let mut rng = SimRng::new(seed ^ (k << 12));
    let now = tb.now();
    for _ in 0..sessions {
        tb.directory_mut(0)
            .create_session(now, "survivor", 127, media(), &mut rng)
            .ok()?;
    }
    tb.kick(0);
    tb.kick(1);
    tb.run_until(SimTime::from_secs(240));
    // Full rebuild = the moment the n-th distinct session lands back in
    // the restarted cache (every re-learned entry logs Heard(New)).
    let mut new_heard = 0;
    for e in tb.log.iter().filter(|e| {
        e.node == 1
            && e.at >= restart_at
            && matches!(
                e.event,
                DirectoryEvent::Heard(sdalloc_sap::cache::CacheUpdate::New)
            )
    }) {
        new_heard += 1;
        if new_heard == sessions {
            return Some(e.at.saturating_since(restart_at).as_secs_f64());
        }
    }
    None
}

/// Crash/restart with the anti-entropy digest exchange, head-to-head
/// against the announce-cycle baseline: same seeds, same fault plan,
/// same survivor sessions — only `DirectoryConfig::reconcile` differs.
pub fn crash_restart_recon(seed: u64, smoke: bool) -> CrashRestartRecon {
    let runs = runs(smoke);
    let sessions = 6;
    let mut out = CrashRestartRecon {
        runs,
        sessions,
        baseline_rebuilt: 0,
        baseline_full_rebuild_s: Vec::new(),
        recon_rebuilt: 0,
        recon_full_rebuild_s: Vec::new(),
    };
    for k in 0..runs as u64 {
        if let Some(s) = crash_restart_recon_instance(seed, k, false, sessions) {
            out.baseline_rebuilt += 1;
            out.baseline_full_rebuild_s.push(s);
        }
        if let Some(s) = crash_restart_recon_instance(seed, k, true, sessions) {
            out.recon_rebuilt += 1;
            out.recon_full_rebuild_s.push(s);
        }
    }
    out
}

/// Outcome of the storm-under-governor scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct StormQuota {
    /// Scenario repeats.
    pub runs: usize,
    /// Forged announcements injected per run.
    pub packets: u32,
    /// The governor's hard cache budget.
    pub budget: usize,
    /// Largest listener cache observed at the horizon across runs.
    pub max_cached: usize,
    /// Runs where the legitimate (verified) session was still cached at
    /// the horizon — must equal `runs` for zero legitimate evictions.
    pub legit_retained: usize,
    /// Unverified-tier evictions across all runs (forged entries
    /// displacing each other at the budget).
    pub evicted_unverified: u64,
    /// Newcomers refused because every incumbent was legitimate.
    pub rejected_budget: u64,
}

/// The PR-3 storm, replayed against a governed cache: the forged flood
/// must neither grow the cache past the budget nor evict the real
/// session.
pub fn storm_quota(seed: u64, smoke: bool) -> StormQuota {
    let runs = runs(smoke);
    let packets = if smoke { 50 } else { 200 };
    let budget = 32;
    let mut out = StormQuota {
        runs,
        packets,
        budget,
        max_cached: 0,
        legit_retained: 0,
        evicted_unverified: 0,
        rejected_budget: 0,
    };
    for k in 0..runs {
        let mut cfgs = configs(2, 256);
        for cfg in &mut cfgs {
            cfg.governor = Some(GovernorConfig {
                max_entries: budget,
                per_source_quota: 4,
                ..GovernorConfig::default()
            });
        }
        let mut tb = Testbed::new(
            cfgs,
            || Box::new(InformedRandomAllocator),
            Channel::mbone_default(),
            seed ^ (k as u64) << 21,
        )
        // The storm opens at t=20: the legitimate session has announced
        // at 0, 5 and 15 by then, so the listener holds it verified.
        .with_faults(FaultPlan::new().with_storm(SimTime::from_secs(20), packets));
        let mut rng = SimRng::new(seed ^ ((k as u64) << 13));
        let now = tb.now();
        if tb
            .directory_mut(0)
            .create_session(now, "real", 127, media(), &mut rng)
            .is_err()
        {
            continue;
        }
        let Some((_, s)) = tb.directory(0).own_sessions().next() else {
            continue;
        };
        let (legit_origin, legit_sid) = (s.desc.origin.address, s.desc.origin.session_id);
        tb.kick(0);
        tb.run_until(SimTime::from_secs(120));
        let listener = tb.directory(1);
        out.max_cached = out.max_cached.max(listener.cached_sessions());
        if listener.cache().get(legit_origin, legit_sid).is_some() {
            out.legit_retained += 1;
        }
        let m = &listener.telemetry().metrics;
        out.evicted_unverified += m.counter_by_name("governor.evicted_unverified");
        out.rejected_budget += m.counter_by_name("governor.rejected_budget");
    }
    out
}

/// Outcome of the burst-loss scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstLoss {
    /// Scenario repeats.
    pub runs: usize,
    /// Runs where every listener eventually cached the session.
    pub converged: usize,
    /// Seconds from session creation to full convergence.
    pub converge_s: Vec<f64>,
}

/// A 90% burst-loss window on top of the 2% base channel: the
/// exponential back-off's repeats must push the announcement through
/// once the burst clears.
pub fn burst_loss(seed: u64, smoke: bool) -> BurstLoss {
    let runs = runs(smoke);
    let mut out = BurstLoss {
        runs,
        converged: 0,
        converge_s: Vec::new(),
    };
    for k in 0..runs {
        let mut tb = Testbed::new(
            configs(3, 256),
            || Box::new(InformedRandomAllocator),
            Channel::mbone_default(),
            seed ^ (k as u64) << 18,
        )
        // The window opens at t=0 so even the initial announcement and
        // the early fast-phase repeats face the burst.
        .with_faults(FaultPlan::new().with_burst_loss(
            SimTime::ZERO,
            SimTime::from_secs(120),
            0.9,
        ));
        let mut rng = SimRng::new(seed ^ ((k as u64) << 10));
        let now = tb.now();
        if tb
            .directory_mut(0)
            .create_session(now, "s", 127, media(), &mut rng)
            .is_err()
        {
            continue;
        }
        tb.kick(0);
        tb.run_until(SimTime::from_secs(900));
        if tb.directory(1).cached_sessions() == 1 && tb.directory(2).cached_sessions() == 1 {
            out.converged += 1;
            let last_first_heard = (1..3)
                .filter_map(|n| {
                    tb.log
                        .iter()
                        .find(|e| e.node == n && matches!(e.event, DirectoryEvent::Heard(_)))
                        .map(|e| e.at.as_secs_f64())
                })
                .fold(0.0, f64::max);
            out.converge_s.push(last_first_heard);
        }
    }
    out
}

/// Outcome of the storm scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Storm {
    /// Scenario repeats.
    pub runs: usize,
    /// Runs where the real session still propagated through the storm.
    pub real_heard: usize,
    /// Runs where a node could still allocate a fresh session after it.
    pub still_allocates: usize,
    /// Forged entries cached at the listener, per run.
    pub forged_cached: Vec<f64>,
}

/// A forged-announcement flood plus a bit-flip corruption window: the
/// cache takes the junk, but real traffic and allocation must survive.
pub fn storm(seed: u64, smoke: bool) -> Storm {
    let runs = runs(smoke);
    let packets = if smoke { 50 } else { 200 };
    let mut out = Storm {
        runs,
        real_heard: 0,
        still_allocates: 0,
        forged_cached: Vec::new(),
    };
    for k in 0..runs {
        let mut tb = Testbed::new(
            configs(2, 256),
            || Box::new(InformedRandomAllocator),
            Channel::mbone_default(),
            seed ^ (k as u64) << 19,
        )
        .with_faults(
            FaultPlan::new()
                .with_storm(SimTime::from_secs(5), packets)
                .with_corruption(
                    SimTime::from_secs(4),
                    SimTime::from_secs(30),
                    0.3,
                    CorruptionMode::BitFlip,
                ),
        );
        let mut rng = SimRng::new(seed ^ ((k as u64) << 11));
        let now = tb.now();
        if tb
            .directory_mut(0)
            .create_session(now, "real", 127, media(), &mut rng)
            .is_err()
        {
            continue;
        }
        tb.kick(0);
        tb.run_until(SimTime::from_secs(120));
        if tb
            .log
            .iter()
            .any(|e| e.node == 1 && matches!(e.event, DirectoryEvent::Heard(_)))
        {
            out.real_heard += 1;
        }
        // The forged entries are everything cached beyond the real one.
        let cached = tb.directory(1).cached_sessions();
        out.forged_cached.push(cached.saturating_sub(1) as f64);
        let now = tb.now();
        let mut rng1 = SimRng::new(seed ^ ((k as u64) << 11) ^ 1);
        if tb
            .directory_mut(1)
            .create_session(now, "after-storm", 127, media(), &mut rng1)
            .is_ok()
        {
            out.still_allocates += 1;
        }
    }
    out
}

/// Outcome of the exhaustion scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Exhaustion {
    /// Creates attempted per mode.
    pub attempts: usize,
    /// Failed creates with the fallback disabled (must be > 0: this is
    /// the failure the graceful path exists to absorb).
    pub strict_failures: usize,
    /// Failed creates with the fallback enabled (should be 0).
    pub graceful_failures: usize,
    /// Degraded (out-of-partition) allocations logged by the graceful
    /// path.
    pub degraded_events: usize,
}

/// Exhaust a static-IPR band and create sessions with the exhaustion
/// fallback disabled, then enabled: the strict run must reproduce at
/// least one failed create that the graceful run survives (logging
/// [`DirectoryEvent::Degraded`] instead).
pub fn exhaustion(seed: u64) -> Exhaustion {
    let attempts = 5;
    let run = |fallback: bool, seed: u64| -> (usize, usize) {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
        cfg.space = AddrSpace::abstract_space(12);
        cfg.exhaustion_fallback = fallback;
        let mut d = SessionDirectory::new(cfg, Box::new(StaticIpr::three_band()));
        let mut rng = SimRng::new(seed);
        let mut failures = 0;
        for k in 0..attempts {
            // TTL 15 keeps every create inside one 4-address band.
            if d.create_session(SimTime::from_secs(k as u64), "s", 15, media(), &mut rng)
                .is_err()
            {
                failures += 1;
            }
        }
        let degraded = d
            .take_events()
            .iter()
            .filter(|e| matches!(e, DirectoryEvent::Degraded { .. }))
            .count();
        (failures, degraded)
    };
    let (strict_failures, _) = run(false, seed);
    let (graceful_failures, degraded_events) = run(true, seed);
    Exhaustion {
        attempts,
        strict_failures,
        graceful_failures,
        degraded_events,
    }
}

/// Run the full scenario matrix and render the deterministic JSON
/// report: fixed field order, fixed float precision, no wall-clock
/// anywhere — the same seed produces a byte-identical report.
pub fn run(seed: u64, smoke: bool) -> String {
    let ph = partition_heal(seed, smoke);
    let cr = crash_restart(seed, smoke);
    let crr = crash_restart_recon(seed, smoke);
    let bl = burst_loss(seed, smoke);
    let st = storm(seed, smoke);
    let sq = storm_quota(seed, smoke);
    let ex = exhaustion(seed);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    s.push_str("  \"partition_heal\": {\n");
    s.push_str(&format!("    \"runs\": {},\n", ph.runs));
    s.push_str(&format!("    \"duplicated\": {},\n", ph.duplicated));
    s.push_str(&format!("    \"reconverged\": {},\n", ph.reconverged));
    s.push_str(&format!(
        "    \"mean_exposure_s\": {:.3},\n",
        mean(&ph.exposure_s)
    ));
    s.push_str(&format!(
        "    \"max_exposure_s\": {:.3},\n",
        max(&ph.exposure_s)
    ));
    s.push_str(&format!("    \"moves\": {},\n", ph.moves));
    s.push_str(&format!("    \"defences\": {}\n", ph.defences));
    s.push_str("  },\n");
    s.push_str("  \"crash_restart\": {\n");
    s.push_str(&format!("    \"runs\": {},\n", cr.runs));
    s.push_str(&format!("    \"rebuilt\": {},\n", cr.rebuilt));
    s.push_str(&format!(
        "    \"mean_rebuild_s\": {:.3},\n",
        mean(&cr.rebuild_s)
    ));
    s.push_str(&format!(
        "    \"max_rebuild_s\": {:.3},\n",
        max(&cr.rebuild_s)
    ));
    s.push_str(&format!(
        "    \"announce_cap_s\": {:.3}\n",
        cr.announce_cap_s
    ));
    s.push_str("  },\n");
    s.push_str("  \"crash_restart_recon\": {\n");
    s.push_str(&format!("    \"runs\": {},\n", crr.runs));
    s.push_str(&format!("    \"sessions\": {},\n", crr.sessions));
    s.push_str(&format!(
        "    \"baseline_rebuilt\": {},\n",
        crr.baseline_rebuilt
    ));
    s.push_str(&format!(
        "    \"mean_baseline_full_rebuild_s\": {:.3},\n",
        mean(&crr.baseline_full_rebuild_s)
    ));
    s.push_str(&format!("    \"recon_rebuilt\": {},\n", crr.recon_rebuilt));
    s.push_str(&format!(
        "    \"mean_recon_full_rebuild_s\": {:.3},\n",
        mean(&crr.recon_full_rebuild_s)
    ));
    s.push_str(&format!("    \"speedup\": {:.3}\n", crr.speedup()));
    s.push_str("  },\n");
    s.push_str("  \"burst_loss\": {\n");
    s.push_str(&format!("    \"runs\": {},\n", bl.runs));
    s.push_str(&format!("    \"converged\": {},\n", bl.converged));
    s.push_str(&format!(
        "    \"mean_converge_s\": {:.3},\n",
        mean(&bl.converge_s)
    ));
    s.push_str(&format!(
        "    \"max_converge_s\": {:.3}\n",
        max(&bl.converge_s)
    ));
    s.push_str("  },\n");
    s.push_str("  \"storm\": {\n");
    s.push_str(&format!("    \"runs\": {},\n", st.runs));
    s.push_str(&format!("    \"real_heard\": {},\n", st.real_heard));
    s.push_str(&format!(
        "    \"still_allocates\": {},\n",
        st.still_allocates
    ));
    s.push_str(&format!(
        "    \"mean_forged_cached\": {:.3}\n",
        mean(&st.forged_cached)
    ));
    s.push_str("  },\n");
    s.push_str("  \"storm_quota\": {\n");
    s.push_str(&format!("    \"runs\": {},\n", sq.runs));
    s.push_str(&format!("    \"packets\": {},\n", sq.packets));
    s.push_str(&format!("    \"budget\": {},\n", sq.budget));
    s.push_str(&format!("    \"max_cached\": {},\n", sq.max_cached));
    s.push_str(&format!("    \"legit_retained\": {},\n", sq.legit_retained));
    s.push_str(&format!(
        "    \"evicted_unverified\": {},\n",
        sq.evicted_unverified
    ));
    s.push_str(&format!(
        "    \"rejected_budget\": {}\n",
        sq.rejected_budget
    ));
    s.push_str("  },\n");
    s.push_str("  \"exhaustion\": {\n");
    s.push_str(&format!("    \"attempts\": {},\n", ex.attempts));
    s.push_str(&format!(
        "    \"strict_failures\": {},\n",
        ex.strict_failures
    ));
    s.push_str(&format!(
        "    \"graceful_failures\": {},\n",
        ex.graceful_failures
    ));
    s.push_str(&format!(
        "    \"degraded_events\": {}\n",
        ex.degraded_events
    ));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

/// Everything [`run`] produces plus the telemetry sidecars.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRun {
    /// The scenario-matrix report (exactly [`run`]'s output).
    pub report: String,
    /// Per-node telemetry snapshots from a representative instrumented
    /// partition-heal instance (a JSON array, one object per node);
    /// `None` when no duplicate could be forced at this seed.
    pub telemetry_json: Option<String>,
    /// Flight-recorder dumps, one `(label, json)` per node, captured
    /// from the forced-failure instance (a partition that never heals,
    /// so the reconvergence property is violated at the horizon).
    pub dumps: Vec<(String, String)>,
}

/// [`run`] plus telemetry capture and the forced-failure post-mortem.
///
/// The report string is byte-identical to [`run`]'s (the instrumented
/// companion runs use their own testbeds and RNG streams), so existing
/// consumers of `chaos.json` see no change.
pub fn run_full(seed: u64, smoke: bool) -> ChaosRun {
    let report = run(seed, smoke);
    // Representative instrumented run: the per-node metric snapshots of
    // a healed partition instance (telemetry is on by default in the
    // testbed, so this is the same protocol execution the matrix saw).
    let telemetry_json = heal_instance(seed, 0, Some(SimTime::from_secs(40))).map(|tb| {
        debug_assert_ne!(own_group(&tb, 0), own_group(&tb, 1));
        tb.telemetry_json()
    });
    // Forced property violation: the partition never heals, so the two
    // sides still hold the same group at the horizon.  That violated
    // invariant is the flight recorder's trigger: dump every node's
    // ring for the post-mortem.
    let mut dumps = Vec::new();
    if let Some(tb) = heal_instance(seed, 0, None) {
        if own_group(&tb, 0) == own_group(&tb, 1) {
            let reason = "chaos: partition never healed; duplicate address survived to horizon";
            for (i, d) in tb.flight_dump(reason).into_iter().enumerate() {
                dumps.push((format!("partition_no_heal_node{i}"), d));
            }
        }
    }
    ChaosRun {
        report,
        telemetry_json,
        dumps,
    }
}

/// The threaded-runtime counterpart of [`crash_restart`]: agent
/// *threads* on the loopback bus, one of which crashes and restarts
/// mid-run while reader threads hammer the lock-free snapshot path.
/// Where the simulator scenarios prove the protocol recovers, this one
/// proves the *runtime* does: no reader ever stalls on the crashed
/// writer, no reader ever observes a torn or recycled row, and the
/// restarted node's snapshot exposure window closes — the runtime-level
/// mirror of [`crash_restart_recon`]'s reconciliation rebuild numbers.
///
/// Wall-clock timed by nature (real threads), so unlike the matrix its
/// numbers vary run to run; the *invariants* (stalls, integrity,
/// recovery) must not.
pub fn runtime_soak(seed: u64, smoke: bool) -> sdalloc_runtime::SoakReport {
    let cfg = if smoke {
        sdalloc_runtime::SoakConfig::smoke(seed)
    } else {
        sdalloc_runtime::SoakConfig::full(seed)
    };
    sdalloc_runtime::run_soak(&cfg)
}

/// Render a [`sdalloc_runtime::SoakReport`] as the `runtime_soak`
/// sidecar JSON.
pub fn render_runtime_soak(seed: u64, smoke: bool, r: &sdalloc_runtime::SoakReport) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"runtime_soak\": {\n");
    s.push_str(&format!("    \"seed\": {seed},\n"));
    s.push_str(&format!(
        "    \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    s.push_str(&format!("    \"agents\": {},\n", r.agents));
    s.push_str(&format!("    \"readers\": {},\n", r.readers));
    s.push_str(&format!(
        "    \"elapsed_s\": {:.3},\n",
        r.elapsed.as_secs_f64()
    ));
    s.push_str(&format!("    \"crash_node\": {},\n", r.crash_node));
    s.push_str(&format!("    \"pre_crash_rows\": {},\n", r.pre_crash_rows));
    s.push_str(&format!("    \"post_cached\": {},\n", r.post_cached));
    s.push_str(&format!("    \"recovered\": {},\n", r.recovered));
    s.push_str(&format!(
        "    \"exposure_ms\": {},\n",
        r.exposure_ms
            .map_or("null".to_string(), |ms| format!("{ms:.1}"))
    ));
    s.push_str(&format!(
        "    \"reader_queries\": [{}],\n",
        r.reader_queries
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!(
        "    \"stalled_readers\": {},\n",
        r.stalled_readers
    ));
    s.push_str(&format!(
        "    \"integrity_failures\": {},\n",
        r.integrity_failures
    ));
    s.push_str(&format!(
        "    \"snapshots_published\": {},\n",
        r.snapshots_published
    ));
    s.push_str(&format!("    \"bus_delivered\": {},\n", r.bus.delivered));
    s.push_str(&format!(
        "    \"bus_dropped\": {}\n",
        r.bus.dropped_loss + r.bus.dropped_down + r.bus.dropped_corrupt
    ));
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_deterministic() {
        // The acceptance bar: same seed, same plan, byte-identical JSON.
        let a = run(1998, true);
        let b = run(1998, true);
        assert_eq!(a, b);
    }

    #[test]
    fn forced_failure_produces_flight_dumps() {
        let out = run_full(1998, true);
        assert_eq!(out.dumps.len(), 3, "one dump per node");
        for (label, d) in &out.dumps {
            assert!(d.contains("\"flight_recorder\": true"), "{label}: {d}");
            assert!(d.contains("partition never healed"), "{label}");
        }
        // The clashing announcers' rings retain their allocate spans.
        assert!(out.dumps[0].1.contains("\"span\": \"allocate\""));
        // The representative healed run produced per-node telemetry.
        let t = out.telemetry_json.as_deref().unwrap_or("");
        assert!(t.contains("\"announce.sent\""), "{t}");
        assert!(t.contains("\"node\": 2"), "all three nodes present: {t}");
    }

    #[test]
    fn run_full_is_deterministic() {
        let a = run_full(7, true);
        let b = run_full(7, true);
        assert_eq!(a, b);
    }

    #[test]
    fn exhaustion_strict_fails_where_graceful_survives() {
        let ex = exhaustion(1998);
        assert!(ex.strict_failures > 0, "strict path must reproduce failure");
        assert_eq!(ex.graceful_failures, 0, "graceful path must survive");
        assert!(ex.degraded_events > 0, "degradation must be logged");
    }

    #[test]
    fn partition_heal_reconverges_with_bounded_exposure() {
        let ph = partition_heal(1998, true);
        assert!(ph.duplicated > 0, "scenario must force duplicates");
        assert_eq!(ph.reconverged, ph.duplicated, "all duplicates resolve");
        assert!(
            ph.exposure_s.iter().all(|&s| s > 0.0 && s < 1_300.0),
            "exposure starts at the heal and ends before the horizon: {:?}",
            ph.exposure_s
        );
    }

    #[test]
    fn crash_restart_recon_closes_the_exposure_window() {
        let crr = crash_restart_recon(1998, true);
        assert_eq!(crr.baseline_rebuilt, crr.runs, "baseline must rebuild");
        assert_eq!(crr.recon_rebuilt, crr.runs, "recon must rebuild");
        assert!(
            crr.speedup() >= 5.0,
            "reconciliation must shrink the window ≥5×: baseline {:?}, recon {:?}",
            crr.baseline_full_rebuild_s,
            crr.recon_full_rebuild_s
        );
    }

    #[test]
    fn storm_quota_bounds_cache_and_keeps_legit_sessions() {
        let sq = storm_quota(1998, true);
        assert!(
            sq.max_cached <= sq.budget,
            "cache grew past the budget: {} > {}",
            sq.max_cached,
            sq.budget
        );
        assert_eq!(
            sq.legit_retained, sq.runs,
            "a legitimate session was evicted under storm pressure"
        );
        assert!(
            sq.evicted_unverified > 0,
            "the forged flood must have cycled through the unverified tier"
        );
    }

    #[test]
    fn crash_restart_rebuilds_within_a_few_periods() {
        let cr = crash_restart(1998, true);
        assert_eq!(cr.rebuilt, cr.runs, "every restart must rebuild");
        assert!(
            cr.rebuild_s.iter().all(|&s| s <= 5.0 * cr.announce_cap_s),
            "rebuild within a few announcement periods: {:?}",
            cr.rebuild_s
        );
    }
}
