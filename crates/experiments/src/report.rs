//! Output formatting: aligned text tables (what the binary prints) and
//! CSV files (what plotting scripts consume).

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Render an aligned text table.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

/// Write rows as CSV (naive quoting: cells containing commas or quotes
/// are double-quoted).
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut f = fs::File::create(path)?;
    writeln!(
        f,
        "{}",
        headers
            .iter()
            .map(|h| csv_cell(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            f,
            "{}",
            row.iter()
                .map(|c| csv_cell(c))
                .collect::<Vec<_>>()
                .join(",")
        )?;
    }
    Ok(())
}

fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Format a float compactly (3 significant-ish decimals, no trailing
/// zero noise).
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let rows = vec![
            vec!["a".to_string(), "1234".to_string()],
            vec!["long-name".to_string(), "5".to_string()],
        ];
        let t = table("demo", &["alg", "n"], &rows);
        assert!(t.contains("## demo"));
        let lines: Vec<&str> = t.lines().collect();
        // All data lines share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_cell("plain"), "plain");
        assert_eq!(csv_cell("a,b"), "\"a,b\"");
        assert_eq!(csv_cell("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_writes_file() {
        let dir = std::env::temp_dir().join("sdalloc_report_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4,5".into()]],
        )
        .unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n3,\"4,5\"\n");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.6), "1235");
        assert_eq!(fmt_f64(56.78), "56.8");
        assert_eq!(fmt_f64(1.23456), "1.235");
    }
}
