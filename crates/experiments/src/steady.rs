//! Figures 12 and 13: steady-state behaviour of the adaptive schemes.
//!
//! The paper's Section 2.6 procedure, verbatim:
//!
//! 1. Allocate n sessions with TTLs chosen from the appropriate
//!    distribution and sources chosen at random without regard for
//!    address clashes.
//! 2. Re-allocate the addresses using the algorithm being tested so
//!    that no clashes exist.
//! 3. Remove one existing session chosen at random.
//! 4. Allocate a new session.
//! 5. Repeat from 3 until n sessions have been replaced keeping score
//!    of the number of address clashes.
//!
//! "This process is repeated \[repeats\] times to obtain a mean value …
//! The precise value of n for each address space size where the
//! probability of a clash exceeds 0.5 is discovered by using a median
//! filter to remove remaining noise."
//!
//! Figure 13's upper bound replaces a removed session "with a session
//! advertised from the same site with the same TTL", testing only the
//! limits of adaptation rather than the adaptation mechanism.

use sdalloc_core::{AddrSpace, Allocator};
use sdalloc_sim::{median_filter, SimRng};
use sdalloc_topology::workload::{random_scope, TtlDistribution};
use sdalloc_topology::Topology;

use crate::world::World;

/// Replacement policy for step 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// New random site and TTL (Figure 12).
    Random,
    /// Same site and TTL as the removed session (Figure 13's bound).
    SameSiteAndTtl,
}

/// Estimate the probability that at least one clash occurs while
/// replacing all `n` sessions once (one "mean session lifetime"), for
/// the given algorithm, space size and TTL distribution.
#[allow(clippy::too_many_arguments)] // experiment knobs mirror the paper's
pub fn steady_state_clash_probability(
    topo: &Topology,
    alg: &dyn Allocator,
    dist: &TtlDistribution,
    space_size: u32,
    n: usize,
    replacement: Replacement,
    repeats: usize,
    seed: u64,
) -> f64 {
    assert!(n >= 1 && repeats >= 1);
    let mut world = World::new(topo.clone(), AddrSpace::abstract_space(space_size));
    let mut clashing_runs = 0usize;
    for rep in 0..repeats {
        let mut rng = SimRng::new(seed ^ (rep as u64 + 1).wrapping_mul(0xA24B_AED4));
        if !seed_clash_free(&mut world, alg, dist, n, &mut rng) {
            // Could not even establish a clash-free state: count as a
            // clashing run (the space is simply too small for n).
            clashing_runs += 1;
            continue;
        }
        let mut clashed = false;
        for _ in 0..n {
            let removed = world.remove_random(&mut rng);
            let scope = match replacement {
                Replacement::Random => random_scope(world.scopes_mut().topology(), dist, &mut rng),
                Replacement::SameSiteAndTtl => removed.scope,
            };
            match world.allocate(alg, scope, &mut rng) {
                None => {
                    clashed = true; // refusing mid-steady-state is a failure
                    break;
                }
                Some((_, true)) => {
                    clashed = true;
                    break;
                }
                Some((_, false)) => {}
            }
        }
        if clashed {
            clashing_runs += 1;
        }
    }
    clashing_runs as f64 / repeats as f64
}

/// Step 1–2: build an initial clash-free population of `n` sessions.
/// Returns false if the algorithm cannot place them all without clashes
/// (after bounded retries per session).
fn seed_clash_free(
    world: &mut World,
    alg: &dyn Allocator,
    dist: &TtlDistribution,
    n: usize,
    rng: &mut SimRng,
) -> bool {
    world.clear_sessions();
    // Step 2 is *constructive* ("re-allocate the addresses … so that no
    // clashes exist"): it builds the starting state, it is not part of
    // the measurement.  An awkward draw (a scope whose band is wedged
    // against invisible sessions) is therefore re-drawn rather than
    // counted against the algorithm; only sustained failure — a genuine
    // capacity limit — fails the seeding.
    'sessions: for _ in 0..n {
        for _redraw in 0..20 {
            let scope = random_scope(world.scopes_mut().topology(), dist, rng);
            for _ in 0..64 {
                let visible = world.visible_at(scope.source);
                let view = sdalloc_core::View::new(&visible);
                let Some(addr) = alg.allocate(world.space(), scope.ttl, &view, rng) else {
                    break; // this scope's partition is full; redraw
                };
                if !world.would_clash(scope, addr) {
                    world.insert(crate::world::ActiveSession { scope, addr });
                    continue 'sessions;
                }
            }
        }
        return false;
    }
    true
}

/// Find the largest `n` for which the steady-state clash probability
/// stays at or below 0.5, by doubling then bisecting, with a final
/// median filter over a local scan (the paper's noise-removal step).
#[allow(clippy::too_many_arguments)]
pub fn allocations_at_half(
    topo: &Topology,
    alg: &dyn Allocator,
    dist: &TtlDistribution,
    space_size: u32,
    replacement: Replacement,
    repeats: usize,
    seed: u64,
    max_n: usize,
) -> usize {
    let prob = |n: usize, salt: u64| {
        steady_state_clash_probability(
            topo,
            alg,
            dist,
            space_size,
            n,
            replacement,
            repeats,
            seed ^ salt,
        )
    };
    // A single Monte-Carlo estimate above 0.5 is weak evidence near the
    // crossing; require an independent confirmation before treating a
    // point as "over", or a gradually-rising clash curve gets its
    // bracket cut absurdly short by one unlucky probe.
    let over = |n: usize, salt: u64| prob(n, salt) > 0.5 && prob(n, salt ^ 0x5EED_5EED) > 0.5;
    // Exponential bracket.
    let mut lo = 1usize;
    let mut hi = 2usize;
    while hi < max_n && !over(hi, hi as u64) {
        lo = hi;
        hi *= 2;
    }
    if hi >= max_n {
        return max_n;
    }
    // Bisect.
    while hi - lo > (lo / 8).max(1) {
        let mid = lo + (hi - lo) / 2;
        if !over(mid, mid as u64) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Local scan + median filter around the bracket to steady the noise.
    let step = ((hi - lo) / 2).max(1);
    let candidates: Vec<usize> = (0..5)
        .map(|i| lo.saturating_sub(step * 2) + i * step)
        .filter(|&c| c >= 1)
        .collect();
    let probs: Vec<f64> = candidates
        .iter()
        .map(|&c| prob(c, 0xF00D ^ c as u64))
        .collect();
    let smooth = median_filter(&probs, 3);
    let mut best = lo;
    for (c, p) in candidates.iter().zip(&smooth) {
        if *p <= 0.5 && *c > best {
            best = *c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_core::{AdaptiveIpr, InformedRandomAllocator, StaticIpr};
    use sdalloc_topology::mbone::{MboneMap, MboneParams};

    fn small_mbone() -> Topology {
        MboneMap::generate(&MboneParams {
            seed: 5,
            target_nodes: 200,
        })
        .topo
    }

    #[test]
    fn tiny_n_rarely_clashes() {
        let topo = small_mbone();
        let p = steady_state_clash_probability(
            &topo,
            &StaticIpr::seven_band(),
            &TtlDistribution::ds4(),
            400,
            4,
            Replacement::Random,
            10,
            1,
        );
        assert!(p <= 0.2, "p = {p}");
    }

    #[test]
    fn overfull_n_always_fails() {
        let topo = small_mbone();
        let p = steady_state_clash_probability(
            &topo,
            &InformedRandomAllocator,
            &TtlDistribution::ds1(),
            50,
            200, // cannot possibly be clash-free globally
            Replacement::Random,
            5,
            2,
        );
        assert!(p > 0.9, "p = {p}");
    }

    #[test]
    fn clash_probability_monotone_in_n() {
        let topo = small_mbone();
        let dist = TtlDistribution::ds4();
        let alg = AdaptiveIpr::aipr1();
        let p_small =
            steady_state_clash_probability(&topo, &alg, &dist, 300, 5, Replacement::Random, 10, 3);
        let p_big = steady_state_clash_probability(
            &topo,
            &alg,
            &dist,
            300,
            120,
            Replacement::Random,
            10,
            3,
        );
        assert!(p_big >= p_small, "p(120) = {p_big} < p(5) = {p_small}");
    }

    #[test]
    fn half_point_is_bracketed() {
        let topo = small_mbone();
        let alg = StaticIpr::seven_band();
        let dist = TtlDistribution::ds4();
        let n_half = allocations_at_half(&topo, &alg, &dist, 300, Replacement::Random, 8, 4, 5_000);
        assert!(n_half >= 1);
        assert!(n_half < 5_000, "unbounded result");
        // Probability just below the found point should be moderate.
        let p = steady_state_clash_probability(
            &topo,
            &alg,
            &dist,
            300,
            n_half.max(2) / 2,
            Replacement::Random,
            10,
            5,
        );
        assert!(p <= 0.8, "p at half the crossing = {p}");
    }

    #[test]
    fn same_site_bound_geq_random_for_aipr1() {
        // Figure 13's point: with stable (site, TTL) churn, AIPR-1's
        // small gaps suffice — its bound should be at least the
        // random-churn value.
        let topo = small_mbone();
        let alg = AdaptiveIpr::aipr1();
        let dist = TtlDistribution::ds4();
        let random =
            allocations_at_half(&topo, &alg, &dist, 200, Replacement::Random, 10, 6, 2_000);
        let pinned = allocations_at_half(
            &topo,
            &alg,
            &dist,
            200,
            Replacement::SameSiteAndTtl,
            10,
            6,
            2_000,
        );
        // The crossing search has coarse granularity at small spaces;
        // only assert pinned churn is in the same ballpark or better.
        assert!(
            pinned as f64 >= random as f64 * 0.5,
            "pinned {pinned} vs random {random}"
        );
    }
}
