//! Monte-Carlo validation of Equation 1 (the Figure 6 model).
//!
//! Equation 1 is an *analytic approximation*: with `m` sessions
//! allocated in a partition of `n` addresses and `i` of them invisible
//! to any given allocator, the probability that no clash occurs within
//! one mean session lifetime is `((n−m)/(n+i−m))^m`.  The paper computes
//! Figure 6 from the formula alone; here we also *simulate* the model —
//! sessions churn one lifetime, each allocation drawing uniformly from
//! the addresses it believes free while `i` random sessions are hidden
//! from it — and check the formula against the measured clash rate.
//!
//! This guards the reproduction against a silent algebra slip in the
//! closed form: the experiment harness (`experiments eq1sim`) prints
//! model vs measured side by side.

use sdalloc_core::analytic::eq1_no_clash_probability;
use sdalloc_sim::SimRng;

/// One validation point.
#[derive(Debug, Clone, Copy)]
pub struct Eq1Point {
    /// Partition size.
    pub n: u32,
    /// Sessions allocated.
    pub m: u32,
    /// Invisible sessions per allocation.
    pub i: u32,
    /// Equation 1's no-clash probability.
    pub model: f64,
    /// Simulated no-clash probability.
    pub simulated: f64,
}

/// Simulate one lifetime of churn in a single partition and report the
/// fraction of runs with no clash.
///
/// Each replacement step removes one random session and allocates a new
/// one that sees all but `i` uniformly-chosen existing sessions; a
/// clash is picking an address one of the hidden sessions holds.
pub fn simulate_no_clash_probability(n: u32, m: u32, i: u32, runs: usize, seed: u64) -> f64 {
    assert!(m < n, "partition must not be over-full");
    assert!(
        (i as usize) < m.max(1) as usize + 1,
        "cannot hide more than m sessions"
    );
    let mut clean_runs = 0usize;
    for run in 0..runs {
        let mut rng = SimRng::new(seed ^ (run as u64 + 1).wrapping_mul(0x9E37_79B9));
        // Occupancy bitmap; start with m distinct addresses in use.
        let mut used = vec![false; n as usize];
        let mut sessions: Vec<u32> = Vec::with_capacity(m as usize);
        while sessions.len() < m as usize {
            let a = rng.below(n as u64) as u32;
            if !used[a as usize] {
                used[a as usize] = true;
                sessions.push(a);
            }
        }
        let mut clashed = false;
        'lifetime: for _ in 0..m {
            // One session leaves...
            let gone = rng.index(sessions.len());
            let freed = sessions.swap_remove(gone);
            used[freed as usize] = false;
            // ...and a newcomer allocates, blind to `i` hidden sessions.
            let mut hidden: Vec<u32> = Vec::with_capacity(i as usize);
            while hidden.len() < i as usize {
                let h = sessions[rng.index(sessions.len())];
                if !hidden.contains(&h) {
                    hidden.push(h);
                }
            }
            // Uniform over addresses believed free.
            loop {
                let cand = rng.below(n as u64) as u32;
                if used[cand as usize] && !hidden.contains(&cand) {
                    continue; // visibly busy: the informed part works
                }
                if used[cand as usize] {
                    clashed = true; // landed on a hidden session
                    break 'lifetime;
                }
                used[cand as usize] = true;
                sessions.push(cand);
                break;
            }
        }
        if !clashed {
            clean_runs += 1;
        }
    }
    clean_runs as f64 / runs as f64
}

/// Run the validation grid.
pub fn validate(runs: usize, seed: u64) -> Vec<Eq1Point> {
    let grid: &[(u32, u32, u32)] = &[
        (1_000, 100, 1),
        (1_000, 300, 1),
        (1_000, 500, 2),
        (4_000, 1_000, 1),
        (4_000, 2_000, 2),
        (10_000, 2_000, 2),
    ];
    grid.iter()
        .map(|&(n, m, i)| Eq1Point {
            n,
            m,
            i,
            model: eq1_no_clash_probability(n as f64, m as f64, i as f64),
            simulated: simulate_no_clash_probability(n, m, i, runs, seed),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_invisible_never_clashes() {
        let p = simulate_no_clash_probability(500, 200, 0, 50, 1);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn model_matches_simulation() {
        // The formula should track the Monte-Carlo within a few points
        // across load levels.
        for &(n, m, i) in &[(1_000u32, 200u32, 1u32), (1_000, 500, 1), (2_000, 800, 2)] {
            let model = eq1_no_clash_probability(n as f64, m as f64, i as f64);
            let sim = simulate_no_clash_probability(n, m, i, 400, 7);
            assert!(
                (model - sim).abs() < 0.07,
                "n={n} m={m} i={i}: model {model:.3} vs sim {sim:.3}"
            );
        }
    }

    #[test]
    fn more_invisibility_more_clashes() {
        let p1 = simulate_no_clash_probability(1_000, 400, 1, 300, 3);
        let p4 = simulate_no_clash_probability(1_000, 400, 4, 300, 3);
        assert!(p4 < p1, "i=1 → {p1}, i=4 → {p4}");
    }

    #[test]
    fn validation_grid_shape() {
        let pts = validate(60, 5);
        assert_eq!(pts.len(), 6);
        for p in &pts {
            assert!((0.0..=1.0).contains(&p.simulated));
            assert!((0.0..=1.0).contains(&p.model));
        }
    }
}
