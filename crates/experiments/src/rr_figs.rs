//! Runners for the request–response figures: 14, 15, 16, 18, 19.

use sdalloc_rr::analytic::{buckets, expected_responses_exponential, expected_responses_uniform};
use sdalloc_rr::sim::{run_many, DelayDist, Population, RrParams, TreeMode};
use sdalloc_sim::{SimDuration, SimRng};
use sdalloc_topology::doar::{generate, DoarParams};

/// A point of the Figure 14/18 analytic surfaces.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticPoint {
    /// Receiver-set size.
    pub sites: u64,
    /// Suppression window D2 in milliseconds.
    pub d2_ms: f64,
    /// Expected number of responses.
    pub expected_responses: f64,
}

/// Figure 14: uniform-delay upper bound over a (D2, sites) grid with
/// R = 200 ms.
pub fn figure14(d2_ms: &[f64], sites: &[u64]) -> Vec<AnalyticPoint> {
    grid(d2_ms, sites, expected_responses_uniform)
}

/// Figure 18 (analytic part): exponential-delay expectation over the
/// same kind of grid.
pub fn figure18_analytic(d2_ms: &[f64], sites: &[u64]) -> Vec<AnalyticPoint> {
    grid(d2_ms, sites, expected_responses_exponential)
}

fn grid(d2_ms: &[f64], sites: &[u64], f: fn(u64, u64) -> f64) -> Vec<AnalyticPoint> {
    let mut out = Vec::new();
    for &n in sites {
        for &d2 in d2_ms {
            out.push(AnalyticPoint {
                sites: n,
                d2_ms: d2,
                expected_responses: f(n, buckets(d2, 200.0)),
            });
        }
    }
    out
}

/// The paper's default grids (quick subsets of the figures' axes).
pub mod grids {
    /// D2 values (ms) along the Figure 14/15 axis.
    pub fn d2_ms(full: bool) -> Vec<f64> {
        if full {
            vec![
                200.0,
                800.0,
                3_200.0,
                12_800.0,
                51_200.0,
                204_800.0,
                819_200.0,
                3_276_800.0,
            ]
        } else {
            vec![200.0, 800.0, 3_200.0, 12_800.0, 51_200.0]
        }
    }

    /// Receiver-set sizes along the figures' axes.
    pub fn sites(full: bool) -> Vec<u64> {
        if full {
            vec![200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600, 51_200]
        } else {
            vec![200, 400, 800, 1_600]
        }
    }
}

/// A simulated point of Figures 15/16/18/19.
#[derive(Debug, Clone)]
pub struct SimPoint {
    /// Configuration label ("A: SPT, delay=distance", …).
    pub config: String,
    /// Number of sites (group members + requester).
    pub sites: usize,
    /// D2 in milliseconds.
    pub d2_ms: f64,
    /// Mean responses over the repeats.
    pub mean_responses: f64,
    /// Mean time of first response at the requester (seconds).
    pub mean_first_response_s: f64,
    /// Maximum first-response time seen (seconds).
    pub max_first_response_s: f64,
}

/// The paper's four Figure 15 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config15 {
    /// A: shortest-path trees, delay ≈ distance.
    SptExact,
    /// B: shared tree, delay ≈ distance.
    SharedExact,
    /// C: shortest-path trees, delay = distance + random jitter.
    SptJitter,
    /// D: shared tree, delay = distance + random jitter.
    SharedJitter,
}

impl Config15 {
    /// All four configurations.
    pub fn all() -> [Config15; 4] {
        [
            Config15::SptExact,
            Config15::SharedExact,
            Config15::SptJitter,
            Config15::SharedJitter,
        ]
    }

    /// Display label matching the paper's legend.
    pub fn label(&self) -> &'static str {
        match self {
            Config15::SptExact => "A: SPT, delay~distance",
            Config15::SharedExact => "B: shared, delay~distance",
            Config15::SptJitter => "C: SPT, delay=distance+random",
            Config15::SharedJitter => "D: shared, delay=distance+random",
        }
    }

    fn params(&self, d2: SimDuration, dist: DelayDist) -> RrParams {
        let (tree, jitter) = match self {
            Config15::SptExact => (TreeMode::SourceTrees, None),
            Config15::SharedExact => (TreeMode::SharedTree, None),
            Config15::SptJitter => (TreeMode::SourceTrees, Some(SimDuration::from_millis(10))),
            Config15::SharedJitter => (TreeMode::SharedTree, Some(SimDuration::from_millis(10))),
        };
        RrParams {
            tree,
            dist,
            d1: SimDuration::ZERO,
            d2,
            rtt: SimDuration::from_millis(200),
            jitter_per_hop: jitter,
            population: Population::All,
        }
    }
}

/// Figures 15 and 16: simulate the request–response protocol across
/// configurations, group sizes and windows.  Figure 15 reads the
/// `mean_responses` column; Figure 16 reads the first-response columns.
pub fn figure15_16(
    configs: &[Config15],
    sites: &[u64],
    d2_ms: &[f64],
    repeats: usize,
    seed: u64,
    dist: DelayDist,
) -> Vec<SimPoint> {
    let mut out = Vec::new();
    for &n in sites {
        let topo = generate(&DoarParams::new(n as usize, seed ^ n));
        for config in configs {
            for &d2 in d2_ms {
                let params = config.params(SimDuration::from_secs_f64(d2 / 1_000.0), dist);
                let mut rng = SimRng::new(seed ^ n ^ (d2 as u64));
                let agg = run_many(&topo, &params, repeats, &mut rng);
                out.push(SimPoint {
                    config: config.label().to_string(),
                    sites: n as usize,
                    d2_ms: d2,
                    mean_responses: agg.mean_responses,
                    mean_first_response_s: agg.mean_first_response_secs,
                    max_first_response_s: agg.max_first_response_secs,
                });
            }
        }
    }
    out
}

/// Extension E2 (Section 3.1's levers): compare the duplicate-response
/// reduction strategies the paper proposes — uniform baseline,
/// exponential delays, announcers-respond-first tiering, and arbitrary
/// site ranking — on one topology across windows.
pub fn extension_responders(
    sites: usize,
    d2_ms: &[f64],
    repeats: usize,
    seed: u64,
) -> Vec<SimPoint> {
    let topo = generate(&DoarParams::new(sites, seed));
    let variants: [(&str, DelayDist, Population); 4] = [
        ("uniform", DelayDist::Uniform, Population::All),
        ("exponential", DelayDist::Exponential, Population::All),
        (
            "announcers-first (5%)",
            DelayDist::Uniform,
            Population::AnnouncersFirst { fraction: 0.05 },
        ),
        ("ranked", DelayDist::Ranked, Population::All),
    ];
    let mut out = Vec::new();
    for (label, dist, population) in variants {
        for &d2 in d2_ms {
            let params = RrParams {
                tree: TreeMode::SourceTrees,
                dist,
                d1: SimDuration::ZERO,
                d2: SimDuration::from_secs_f64(d2 / 1_000.0),
                rtt: SimDuration::from_millis(200),
                jitter_per_hop: Some(SimDuration::from_millis(10)),
                population,
            };
            let mut rng = SimRng::new(seed ^ (d2 as u64));
            let agg = run_many(&topo, &params, repeats, &mut rng);
            out.push(SimPoint {
                config: label.to_string(),
                sites,
                d2_ms: d2,
                mean_responses: agg.mean_responses,
                mean_first_response_s: agg.mean_first_response_secs,
                max_first_response_s: agg.max_first_response_secs,
            });
        }
    }
    out
}

/// Figure 19: the trade-off curves — (mean responses, time of first
/// response) per D2, for uniform (Figure 15 C) and exponential (Figure
/// 18) random delays.
pub fn figure19(
    sites: &[u64],
    d2_ms: &[f64],
    repeats: usize,
    seed: u64,
) -> (Vec<SimPoint>, Vec<SimPoint>) {
    let uniform = figure15_16(
        &[Config15::SptJitter],
        sites,
        d2_ms,
        repeats,
        seed,
        DelayDist::Uniform,
    );
    let exponential = figure15_16(
        &[Config15::SptJitter],
        sites,
        d2_ms,
        repeats,
        seed,
        DelayDist::Exponential,
    );
    (uniform, exponential)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure14_grid_shape() {
        let pts = figure14(&grids::d2_ms(false), &[200, 1_600]);
        assert_eq!(pts.len(), 2 * 5);
        // More sites → more expected responses at fixed D2.
        let small = pts
            .iter()
            .find(|p| p.sites == 200 && p.d2_ms == 3_200.0)
            .unwrap();
        let big = pts
            .iter()
            .find(|p| p.sites == 1_600 && p.d2_ms == 3_200.0)
            .unwrap();
        assert!(big.expected_responses > small.expected_responses);
    }

    #[test]
    fn figure18_bounded() {
        let pts = figure18_analytic(&grids::d2_ms(false), &grids::sites(false));
        for p in &pts {
            if p.d2_ms >= 3_200.0 {
                assert!(p.expected_responses < 10.0, "exponential exploded: {p:?}");
            }
        }
    }

    #[test]
    fn sim_points_sane() {
        let pts = figure15_16(
            &[Config15::SptExact, Config15::SharedExact],
            &[200],
            &[800.0, 12_800.0],
            3,
            1,
            DelayDist::Uniform,
        );
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.mean_responses >= 1.0, "{p:?}");
            assert!(p.mean_first_response_s >= 0.0);
            assert!(p.max_first_response_s >= p.mean_first_response_s * 0.99);
        }
        // Longer window suppresses more (per config).
        for cfg in ["A: SPT, delay~distance", "B: shared, delay~distance"] {
            let short = pts
                .iter()
                .find(|p| p.config == cfg && p.d2_ms == 800.0)
                .unwrap();
            let long = pts
                .iter()
                .find(|p| p.config == cfg && p.d2_ms == 12_800.0)
                .unwrap();
            assert!(
                long.mean_responses <= short.mean_responses + 0.5,
                "{cfg}: {} vs {}",
                short.mean_responses,
                long.mean_responses
            );
        }
    }

    #[test]
    fn extension_responders_orders_schemes() {
        let pts = extension_responders(300, &[3_200.0], 4, 5);
        assert_eq!(pts.len(), 4);
        let get = |name: &str| {
            pts.iter()
                .find(|p| p.config.starts_with(name))
                .unwrap()
                .mean_responses
        };
        let uniform = get("uniform");
        // Every reduction lever should do no worse than the baseline.
        for name in ["exponential", "announcers-first", "ranked"] {
            assert!(
                get(name) <= uniform + 0.5,
                "{name} ({}) worse than uniform ({uniform})",
                get(name)
            );
        }
    }

    #[test]
    fn figure19_exponential_dominates() {
        let (uni, exp) = figure19(&[400], &[3_200.0], 4, 2);
        assert_eq!(uni.len(), 1);
        assert_eq!(exp.len(), 1);
        assert!(
            exp[0].mean_responses <= uni[0].mean_responses,
            "exp {} uni {}",
            exp[0].mean_responses,
            uni[0].mean_responses
        );
    }
}
