//! Runners for the closed-form figures: 4, 6, 10, 11 and the Section
//! 2.3 worked numbers.

use sdalloc_core::analytic::{birthday_clash_probability, eq1_allocations_at_half, section_2_3};
use sdalloc_core::PartitionMap;
use sdalloc_topology::hopcount::{hop_count_profiles, ttl_table, TtlTableRow};
use sdalloc_topology::Topology;

/// Figure 4: clash probability vs number of random allocations from a
/// space of 10 000.
pub fn figure4(max_allocations: u64, step: u64) -> Vec<(u64, f64)> {
    (0..=max_allocations)
        .step_by(step as usize)
        .map(|k| (k, birthday_clash_probability(10_000, k)))
        .collect()
}

/// One Figure 6 series: invisible fraction `i_frac`, points
/// `(partition size, allocations at p_clash = 0.5)`.
pub struct Figure6Series {
    /// The invisible fraction (i = frac · m).
    pub i_frac: f64,
    /// `(n, m)` points.
    pub points: Vec<(f64, f64)>,
}

/// Figure 6: allocations at 50 % clash probability vs partition size,
/// one series per invisible fraction, over a log-spaced size axis from
/// 100 to 1 000 000.
pub fn figure6() -> Vec<Figure6Series> {
    let fracs = [0.01, 0.001, 0.0001, 0.00001];
    let sizes: Vec<f64> = (0..=16).map(|i| 100.0 * (2f64).powi(i)).collect();
    fracs
        .iter()
        .map(|&i_frac| Figure6Series {
            i_frac,
            points: sizes
                .iter()
                .map(|&n| (n, eq1_allocations_at_half(n, i_frac)))
                .collect(),
        })
        .collect()
}

/// The Section 2.3 worked numbers.
#[derive(Debug, Clone)]
pub struct Section23 {
    /// Mean effective delay with 10-minute constant repeats (s).
    pub effective_delay_slow_s: f64,
    /// Mean effective delay with a 5-second first repeat (s).
    pub effective_delay_fast_s: f64,
    /// Fraction of advertised sessions invisible at any time.
    pub invisible_fraction: f64,
    /// Concurrent sessions for 65 536 addresses in 8 partitions at
    /// i = 0.001 m (the paper's "approximately 16 496").
    pub concurrent_sessions: f64,
}

/// Compute the Section 2.3 numbers.
pub fn section23() -> Section23 {
    let slow = section_2_3::effective_delay_secs(0.2, 0.02, 600.0);
    let fast = section_2_3::effective_delay_secs(0.2, 0.02, 5.0);
    Section23 {
        effective_delay_slow_s: slow,
        effective_delay_fast_s: fast,
        invisible_fraction: section_2_3::invisible_fraction(slow, 4.0 * 3600.0),
        concurrent_sessions: section_2_3::concurrent_sessions(65_536.0, 8.0, 0.001),
    }
}

/// Figure 10: normalised hop-count histograms for the canonical TTLs.
pub struct Figure10 {
    /// Rows of the accompanying table (most frequent / max hop count).
    pub table: Vec<TtlTableRow>,
    /// `(ttl, normalised histogram)` pairs.
    pub histograms: Vec<(u8, Vec<f64>)>,
}

/// Run the Figure 10 analysis (stride subsamples sources for speed;
/// 1 = every mrouter, the paper's setting).
pub fn figure10(topo: &Topology, stride: usize) -> Figure10 {
    let ttls = [16u8, 47, 63, 127];
    let profiles = hop_count_profiles(topo, &ttls, stride);
    Figure10 {
        table: ttl_table(topo, stride),
        histograms: profiles
            .into_iter()
            .map(|p| (p.ttl, p.normalized()))
            .collect(),
    }
}

/// Figure 11: the TTL → partition mapping at margin 2.
pub fn figure11() -> Vec<(u8, usize)> {
    let map = PartitionMap::paper_default();
    (0..=255u8).map(|t| (t, map.partition_of(t))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_topology::mbone::{MboneMap, MboneParams};

    #[test]
    fn figure4_endpoints() {
        let pts = figure4(400, 50);
        assert_eq!(pts.first().unwrap().1, 0.0);
        assert!(pts.last().unwrap().1 > 0.99);
        assert_eq!(pts.len(), 9);
    }

    #[test]
    fn figure6_series_ordering() {
        let series = figure6();
        assert_eq!(series.len(), 4);
        // At every size, smaller invisible fraction packs at least as well.
        for w in series.windows(2) {
            for (a, b) in w[0].points.iter().zip(&w[1].points) {
                assert!(b.1 >= a.1 * 0.999, "i={} vs i={}", w[0].i_frac, w[1].i_frac);
            }
        }
        // Bounds: m between sqrt(n)-ish and n.
        for s in &series {
            for &(n, m) in &s.points {
                assert!(m <= n);
                assert!(m >= n.sqrt() * 0.3, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn section23_matches_paper() {
        let s = section23();
        assert!((s.effective_delay_slow_s - 12.196).abs() < 0.01);
        assert!((s.effective_delay_fast_s - 0.296).abs() < 0.01);
        assert!((s.concurrent_sessions - 16_496.0).abs() < 350.0);
    }

    #[test]
    fn figure11_has_55_partitions() {
        let rows = figure11();
        assert_eq!(rows.len(), 256);
        assert_eq!(rows.last().unwrap().1, 54); // zero-based partition 54 = 55th
                                                // Monotone non-decreasing.
        for w in rows.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn figure10_runs_on_small_map() {
        let map = MboneMap::generate(&MboneParams {
            seed: 9,
            target_nodes: 250,
        });
        let fig = figure10(&map.topo, 2);
        assert_eq!(fig.table.len(), 4);
        assert_eq!(fig.histograms.len(), 4);
        for (_, h) in &fig.histograms {
            let sum: f64 = h.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
