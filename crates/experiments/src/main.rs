//! The `experiments` binary: regenerate every table and figure.
//!
//! ```text
//! experiments <target> [--full] [--seed N] [--nodes N] [--out DIR]
//!
//! targets: fig4 fig5 fig6 sec23 fig10 fig11 fig12 fig13
//!          fig14 fig15 fig16 fig18 fig19 chaos all
//! ```
//!
//! `--quick` grids (the default) finish in a couple of minutes on a
//! laptop; `--full` uses paper-scale grids (hours for fig12/fig13,
//! matching the paper's own complaint about O(n³) simulation time).

use std::path::PathBuf;

use sdalloc_experiments::report::{fmt_f64, table, write_csv};
use sdalloc_experiments::{alloc_figs, analytic_figs, rr_figs};
use sdalloc_rr::sim::DelayDist;
use sdalloc_topology::mbone::{MboneMap, MboneParams};

struct Options {
    target: String,
    full: bool,
    seed: u64,
    nodes: usize,
    out: Option<PathBuf>,
    /// Override the per-target repeat count (0 = target default).
    repeats: usize,
    /// Cap the largest simulated group size (0 = no cap).
    max_sites: u64,
    /// Reduced chaos matrix for CI (`chaos --smoke`).
    smoke: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        target: "all".to_string(),
        full: false,
        seed: 1998,
        nodes: 0, // 0 = default per mode
        out: None,
        repeats: 0,
        max_sites: 0,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    let mut positional = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => opts.full = true,
            "--quick" => opts.full = false,
            "--smoke" => opts.smoke = true,
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--nodes" => {
                opts.nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--nodes needs a number"));
            }
            "--repeats" => {
                opts.repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--repeats needs a number"));
            }
            "--max-sites" => {
                opts.max_sites = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--max-sites needs a number"));
            }
            "--out" => {
                opts.out = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--out needs a path")),
                ));
            }
            "-h" | "--help" => usage(""),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if let Some(t) = positional.first() {
        opts.target = t.clone();
    }
    if opts.nodes == 0 {
        opts.nodes = if opts.full { 1864 } else { 400 };
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: experiments <fig4|fig5|fig6|sec23|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig18|fig19|ext1|ext2|clash|eq1sim|chaos|report|all> [--full] [--smoke] [--seed N] [--nodes N] [--repeats N] [--max-sites N] [--out DIR]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let opts = parse_args();
    let known = [
        "fig4", "fig5", "fig6", "sec23", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
        "fig16", "fig18", "fig19", "ext1", "ext2", "clash", "eq1sim", "chaos", "report", "all",
    ];
    if !known.contains(&opts.target.as_str()) {
        usage(&format!("unknown target {}", opts.target));
    }
    let run = |name: &str| opts.target == name || opts.target == "all";

    if run("fig4") {
        fig4(&opts);
    }
    if run("fig6") {
        fig6(&opts);
    }
    if run("sec23") {
        sec23();
    }
    if run("fig11") {
        fig11(&opts);
    }
    if run("fig10") {
        fig10(&opts);
    }
    if run("fig5") {
        fig5(&opts);
    }
    if run("fig12") {
        fig12(&opts);
    }
    if run("fig13") {
        fig13(&opts);
    }
    if run("fig14") {
        fig14(&opts);
    }
    if run("fig15") || run("fig16") {
        fig15_16(&opts);
    }
    if run("fig18") {
        fig18(&opts);
    }
    if run("fig19") {
        fig19(&opts);
    }
    if run("ext1") {
        ext1(&opts);
    }
    if run("ext2") {
        ext2(&opts);
    }
    if run("clash") {
        clash_demo(&opts);
    }
    if run("eq1sim") {
        eq1sim(&opts);
    }
    if run("chaos") {
        chaos(&opts);
    }
    // Last: the report folds in sidecars the targets above wrote.
    if run("report") {
        report_target(&opts);
    }
}

/// Where result sidecars live: `--out` or the default `results_full/`.
fn out_dir(opts: &Options) -> PathBuf {
    opts.out
        .clone()
        .unwrap_or_else(|| PathBuf::from("results_full"))
}

/// Write one sidecar, warning (not failing) on IO errors.
fn write_sidecar(dir: &PathBuf, name: &str, contents: &str) {
    let path = dir.join(name);
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, contents.as_bytes()))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("# wrote {}", path.display());
    }
}

/// Fault-injection scenario matrix; emits a deterministic JSON report
/// (same seed ⇒ byte-identical file) under `results_full/` or `--out`,
/// plus the telemetry sidecar and the forced-failure flight-recorder
/// dumps.
fn chaos(opts: &Options) {
    let out = sdalloc_experiments::chaos::run_full(opts.seed, opts.smoke);
    let dir = out_dir(opts);
    let name = if opts.smoke {
        "chaos_smoke.json"
    } else {
        "chaos.json"
    };
    print!("{}", out.report);
    write_sidecar(&dir, name, &out.report);
    if let Some(telemetry) = &out.telemetry_json {
        write_sidecar(&dir, "TELEMETRY_chaos.json", telemetry);
    }
    for (label, dump) in &out.dumps {
        write_sidecar(&dir, &format!("DUMP_chaos_{label}.json"), dump);
    }
    // The threaded-runtime soak rides along: wall-clock timed, so it
    // gets its own sidecar instead of a row in the byte-stable matrix.
    let soak = sdalloc_experiments::chaos::runtime_soak(opts.seed, opts.smoke);
    let soak_json = sdalloc_experiments::chaos::render_runtime_soak(opts.seed, opts.smoke, &soak);
    print!("{soak_json}");
    let soak_name = if opts.smoke {
        "runtime_soak_smoke.json"
    } else {
        "runtime_soak.json"
    };
    write_sidecar(&dir, soak_name, &soak_json);
    if let Some(dump) = &soak.flight_dump {
        write_sidecar(&dir, "DUMP_chaos_runtime_soak.json", dump);
    }
    // Unlike its timings, the soak's invariants are gates: a stalled
    // reader, a torn row, or an unrecovered crash victim is a failure.
    let mut violated = false;
    if soak.stalled_readers > 0 {
        eprintln!("runtime_soak: {} reader(s) stalled", soak.stalled_readers);
        violated = true;
    }
    if soak.integrity_failures > 0 {
        eprintln!(
            "runtime_soak: {} torn/recycled row(s) observed",
            soak.integrity_failures
        );
        violated = true;
    }
    if !soak.recovered {
        eprintln!(
            "runtime_soak: crash victim never recovered ({} rows pre-crash, {} cached at exit)",
            soak.pre_crash_rows, soak.post_cached
        );
        violated = true;
    }
    if violated {
        std::process::exit(1);
    }
}

/// Fold the `TELEMETRY_*.json` / `BENCH_scale.json` sidecars into
/// `REPORT.md` (regenerating the RR sidecar if absent).
fn report_target(opts: &Options) {
    let dir = out_dir(opts);
    let md = sdalloc_experiments::telemetry_report::generate(&dir, opts.seed);
    print!("{md}");
    write_sidecar(&dir, "REPORT.md", &md);
}

fn eq1sim(opts: &Options) {
    let runs = rep(opts, if opts.full { 2_000 } else { 300 });
    let pts = sdalloc_experiments::eq1_sim::validate(runs, opts.seed);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                p.m.to_string(),
                p.i.to_string(),
                format!("{:.3}", p.model),
                format!("{:.3}", p.simulated),
            ]
        })
        .collect();
    emit(
        opts,
        "eq1sim",
        "Equation 1 validation: model vs Monte-Carlo (no-clash probability)",
        &["n", "m", "i", "Eq1 model", "simulated"],
        rows,
    );
}

/// Section 3 demonstration: measure the three-phase recovery protocol
/// over many randomized partition-heal scenarios on the SAP testbed.
fn clash_demo(opts: &Options) {
    use sdalloc_core::{AddrSpace, InformedRandomAllocator};
    use sdalloc_sap::directory::{DirectoryConfig, DirectoryEvent};
    use sdalloc_sap::sdp::Media;
    use sdalloc_sap::testbed::Testbed;
    use sdalloc_sim::{Channel, SimDuration, SimRng, SimTime};
    use std::net::Ipv4Addr;

    let scenarios = rep(opts, if opts.full { 40 } else { 10 });
    let mut resolved = 0usize;
    let mut moves = 0usize;
    let mut defences = 0usize;
    let mut resolve_secs = Vec::new();
    let mut telemetry = None;
    for k in 0..scenarios {
        let configs: Vec<DirectoryConfig> = (0..3)
            .map(|i| {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
                cfg.space = AddrSpace::abstract_space(2);
                cfg
            })
            .collect();
        let mut tb = Testbed::new(
            configs,
            || Box::new(InformedRandomAllocator),
            Channel::mbone_default(),
            opts.seed ^ k as u64,
        );
        tb.partition(0, 1);
        let media = vec![Media {
            kind: "audio".into(),
            port: 5004,
            proto: "RTP/AVP".into(),
            format: 0,
        }];
        let mut rng0 = SimRng::new(opts.seed ^ (k as u64) << 8);
        let mut rng1 = SimRng::new(opts.seed ^ (k as u64) << 8 ^ 1);
        // Force both partitioned sides onto the same address.
        loop {
            let now = tb.now();
            let id0 = tb
                .directory_mut(0)
                .create_session(now, "a", 127, media.clone(), &mut rng0)
                .unwrap();
            let id1 = tb
                .directory_mut(1)
                .create_session(now, "b", 127, media.clone(), &mut rng1)
                .unwrap();
            let g0 = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
            let g1 = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
            if g0 == g1 {
                break;
            }
            tb.directory_mut(0).withdraw_session(id0);
            tb.directory_mut(1).withdraw_session(id1);
        }
        tb.kick(0);
        tb.kick(1);
        tb.run_until(SimTime::from_secs(40));
        tb.heal(0, 1);
        let heal_at = tb.now();
        let horizon = tb.now() + SimDuration::from_secs(1_300);
        tb.run_until(horizon);
        if k == 0 {
            // Representative per-node telemetry for the sidecar.
            telemetry = Some(tb.telemetry_json());
        }
        let g0 = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
        let g1 = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
        if g0 != g1 {
            resolved += 1;
            if let Some(m) = tb
                .log
                .iter()
                .find(|e| matches!(e.event, DirectoryEvent::Moved { .. }))
            {
                resolve_secs.push(m.at.saturating_since(heal_at).as_secs_f64());
            }
        }
        moves += tb
            .log
            .iter()
            .filter(|e| matches!(e.event, DirectoryEvent::Moved { .. }))
            .count();
        defences += tb
            .log
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    DirectoryEvent::Clash {
                        action: sdalloc_core::ClashAction::ThirdPartyArmed { .. },
                        ..
                    }
                )
            })
            .count();
    }
    println!("## Section 3: three-phase clash recovery over {scenarios} partition-heal scenarios");
    println!("resolved: {resolved}/{scenarios}");
    println!("session moves: {moves}  third-party defences armed: {defences}");
    if !resolve_secs.is_empty() {
        let mean = resolve_secs.iter().sum::<f64>() / resolve_secs.len() as f64;
        let pre_heal = resolve_secs.iter().filter(|&&s| s == 0.0).count();
        println!(
            "mean time from heal to move: {mean:.1}s ({pre_heal} resolved even before the heal,"
        );
        println!("via a third party that could hear both sides of the partition)");
    }
    println!();
    if let Some(t) = &telemetry {
        write_sidecar(&out_dir(opts), "TELEMETRY_clash.json", t);
    }
}

fn ext2(opts: &Options) {
    let (sites, d2s, repeats): (usize, Vec<f64>, usize) = if opts.full {
        (
            3_200,
            vec![800.0, 3_200.0, 12_800.0, 51_200.0],
            rep(opts, 15),
        )
    } else {
        (400, vec![800.0, 3_200.0, 12_800.0], rep(opts, 4))
    };
    let pts = rr_figs::extension_responders(sites, &d2s, repeats, opts.seed);
    emit_sim_rr(
        opts,
        "ext2",
        "Extension E2 (Section 3.1): duplicate-response reduction levers",
        pts,
    );
}

fn ext1(opts: &Options) {
    let map = mbone(opts);
    let (sizes, trials): (Vec<u32>, usize) = if opts.full {
        (vec![512, 2_048, 8_192, 32_768], rep(opts, 5))
    } else {
        (vec![512, 2_048], rep(opts, 3))
    };
    let pts = sdalloc_experiments::ext_hier::extension_hier(&map, &sizes, trials, opts.seed);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.scheme.to_string(),
                p.space_size.to_string(),
                fmt_f64(p.mean_allocations),
                fmt_f64(p.clash_fraction),
            ]
        })
        .collect();
    emit(
        opts,
        "ext1",
        "Extension E1 (Section 4.1): flat vs hierarchical allocation",
        &["scheme", "space", "mean allocations", "clash fraction"],
        rows,
    );
}

fn rep(opts: &Options, default: usize) -> usize {
    if opts.repeats > 0 {
        opts.repeats
    } else {
        default
    }
}

fn cap_sites(opts: &Options, sites: Vec<u64>) -> Vec<u64> {
    if opts.max_sites == 0 {
        sites
    } else {
        sites.into_iter().filter(|&s| s <= opts.max_sites).collect()
    }
}

fn emit(opts: &Options, name: &str, title: &str, headers: &[&str], rows: Vec<Vec<String>>) {
    print!("{}", table(title, headers, &rows));
    println!();
    if let Some(dir) = &opts.out {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = write_csv(&path, headers, &rows) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

fn mbone(opts: &Options) -> MboneMap {
    eprintln!(
        "# generating Mbone map ({} nodes, seed {})",
        opts.nodes, opts.seed
    );
    MboneMap::generate(&MboneParams {
        seed: opts.seed,
        target_nodes: opts.nodes,
    })
}

fn fig4(opts: &Options) {
    let rows: Vec<Vec<String>> = analytic_figs::figure4(400, 10)
        .into_iter()
        .map(|(k, p)| vec![k.to_string(), format!("{p:.4}")])
        .collect();
    emit(
        opts,
        "fig4",
        "Figure 4: clash probability, random allocation from 10,000 addresses",
        &["allocations", "P(clash)"],
        rows,
    );
}

fn fig6(opts: &Options) {
    let mut rows = Vec::new();
    for series in analytic_figs::figure6() {
        for (n, m) in series.points {
            rows.push(vec![
                format!("{}", series.i_frac),
                format!("{n:.0}"),
                format!("{m:.0}"),
            ]);
        }
    }
    emit(
        opts,
        "fig6",
        "Figure 6: allocations in one partition at P(clash)=0.5 (Eq 1)",
        &["i/m", "partition size", "allocations"],
        rows,
    );
}

fn sec23() {
    let s = analytic_figs::section23();
    println!("## Section 2.3 operating point");
    println!(
        "effective delay (10 min repeats): {:.2} s   (paper: ~12 s)",
        s.effective_delay_slow_s
    );
    println!(
        "effective delay (5 s first repeat): {:.2} s  (paper: ~0.3 s)",
        s.effective_delay_fast_s
    );
    println!(
        "invisible session fraction: {:.4}            (paper: ~0.001)",
        s.invisible_fraction
    );
    println!(
        "concurrent sessions (65536/8, i=0.001m): {:.0} (paper: ~16496)",
        s.concurrent_sessions
    );
    println!();
}

fn fig11(opts: &Options) {
    let rows: Vec<Vec<String>> = analytic_figs::figure11()
        .into_iter()
        .step_by(4)
        .map(|(t, p)| vec![t.to_string(), p.to_string()])
        .collect();
    emit(
        opts,
        "fig11",
        "Figure 11: TTL -> IPRMA partition (margin 2, 55 partitions)",
        &["ttl", "partition"],
        rows,
    );
}

fn fig10(opts: &Options) {
    let map = mbone(opts);
    let stride = if opts.full { 1 } else { 2 };
    let fig = analytic_figs::figure10(&map.topo, stride);
    let rows: Vec<Vec<String>> = fig
        .table
        .iter()
        .map(|r| {
            vec![
                r.ttl.to_string(),
                fmt_f64(r.most_frequent),
                r.max_hops.to_string(),
            ]
        })
        .collect();
    emit(
        opts,
        "fig10_table",
        "Section 2.4.1 TTL table: hop counts per scope",
        &["ttl", "most frequent hops", "max hops"],
        rows,
    );
    let mut hist_rows = Vec::new();
    for (ttl, hist) in &fig.histograms {
        for (hops, frac) in hist.iter().enumerate() {
            if *frac > 0.0 {
                hist_rows.push(vec![
                    ttl.to_string(),
                    hops.to_string(),
                    format!("{frac:.4}"),
                ]);
            }
        }
    }
    emit(
        opts,
        "fig10",
        "Figure 10: hop-count distribution per TTL scope (normalised)",
        &["ttl", "hops", "fraction"],
        hist_rows,
    );
}

fn fig5(opts: &Options) {
    let map = mbone(opts);
    let (sizes, trials): (Vec<u32>, usize) = if opts.full {
        (vec![100, 200, 400, 800, 1_600], rep(opts, 10))
    } else {
        (vec![100, 200, 400, 800], rep(opts, 4))
    };
    let pts = alloc_figs::figure5(&map.topo, &sizes, trials, opts.seed);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.algorithm.clone(),
                p.distribution.to_string(),
                p.space_size.to_string(),
                fmt_f64(p.mean_allocations),
            ]
        })
        .collect();
    emit(
        opts,
        "fig5",
        "Figure 5: allocations before first clash (Mbone map)",
        &["algorithm", "ttl dist", "space", "mean allocations"],
        rows,
    );
}

fn fig12(opts: &Options) {
    let map = mbone(opts);
    let (sizes, repeats): (Vec<u32>, usize) = if opts.full {
        (vec![100, 200, 400, 800, 1_600], rep(opts, 100))
    } else {
        (vec![100, 200, 400], rep(opts, 8))
    };
    let pts = alloc_figs::figure12(&map.topo, &sizes, repeats, opts.seed);
    emit_steady(
        opts,
        "fig12",
        "Figure 12: steady-state allocations at P(clash)=0.5 (ds4, random churn)",
        pts,
    );
}

fn fig13(opts: &Options) {
    let map = mbone(opts);
    let (sizes, repeats): (Vec<u32>, usize) = if opts.full {
        (vec![100, 200, 400, 800, 1_600], rep(opts, 100))
    } else {
        (vec![100, 200, 400], rep(opts, 8))
    };
    let pts = alloc_figs::figure13(&map.topo, &sizes, repeats, opts.seed);
    emit_steady(
        opts,
        "fig13",
        "Figure 13: steady-state upper bound (same site+TTL churn)",
        pts,
    );
}

fn emit_steady(opts: &Options, name: &str, title: &str, pts: Vec<alloc_figs::SteadyPoint>) {
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.algorithm.clone(),
                p.space_size.to_string(),
                p.allocations_at_half.to_string(),
            ]
        })
        .collect();
    emit(
        opts,
        name,
        title,
        &["algorithm", "space", "allocations@0.5"],
        rows,
    );
}

fn fig14(opts: &Options) {
    let pts = rr_figs::figure14(
        &rr_figs::grids::d2_ms(opts.full),
        &rr_figs::grids::sites(opts.full),
    );
    emit_analytic_rr(
        opts,
        "fig14",
        "Figure 14: E[responders], uniform delay buckets (R=200 ms)",
        pts,
    );
}

fn fig18(opts: &Options) {
    let pts = rr_figs::figure18_analytic(
        &rr_figs::grids::d2_ms(opts.full),
        &rr_figs::grids::sites(opts.full),
    );
    emit_analytic_rr(
        opts,
        "fig18",
        "Figure 18: E[responders], exponential delay (R=200 ms)",
        pts,
    );
    // Simulation overlay on a reduced grid.
    let (sites, d2s, repeats): (Vec<u64>, Vec<f64>, usize) = if opts.full {
        (
            cap_sites(opts, vec![200, 800, 3_200, 12_800]),
            vec![800.0, 3_200.0, 12_800.0],
            rep(opts, 20),
        )
    } else {
        (
            cap_sites(opts, vec![200, 800]),
            vec![800.0, 3_200.0],
            rep(opts, 5),
        )
    };
    let sim = rr_figs::figure15_16(
        &[rr_figs::Config15::SptExact],
        &sites,
        &d2s,
        repeats,
        opts.seed,
        DelayDist::Exponential,
    );
    emit_sim_rr(opts, "fig18_sim", "Figure 18 (simulated overlay)", sim);
}

fn emit_analytic_rr(opts: &Options, name: &str, title: &str, pts: Vec<rr_figs::AnalyticPoint>) {
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.sites.to_string(),
                fmt_f64(p.d2_ms),
                fmt_f64(p.expected_responses),
            ]
        })
        .collect();
    emit(
        opts,
        name,
        title,
        &["sites", "D2 (ms)", "E[responses]"],
        rows,
    );
}

fn fig15_16(opts: &Options) {
    let (sites, d2s, repeats): (Vec<u64>, Vec<f64>, usize) = if opts.full {
        (
            cap_sites(opts, rr_figs::grids::sites(true)),
            rr_figs::grids::d2_ms(true),
            rep(opts, 20),
        )
    } else {
        (
            cap_sites(opts, vec![200, 400, 800]),
            vec![800.0, 3_200.0, 12_800.0],
            rep(opts, 4),
        )
    };
    let pts = rr_figs::figure15_16(
        &rr_figs::Config15::all(),
        &sites,
        &d2s,
        repeats,
        opts.seed,
        DelayDist::Uniform,
    );
    emit_sim_rr(
        opts,
        "fig15_16",
        "Figures 15/16: simulated request-response (uniform delay)",
        pts,
    );
}

fn emit_sim_rr(opts: &Options, name: &str, title: &str, pts: Vec<rr_figs::SimPoint>) {
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.config.clone(),
                p.sites.to_string(),
                fmt_f64(p.d2_ms),
                fmt_f64(p.mean_responses),
                fmt_f64(p.mean_first_response_s),
                fmt_f64(p.max_first_response_s),
            ]
        })
        .collect();
    emit(
        opts,
        name,
        title,
        &[
            "config",
            "sites",
            "D2 (ms)",
            "mean resp",
            "first resp (s)",
            "max first (s)",
        ],
        rows,
    );
}

fn fig19(opts: &Options) {
    let (sites, d2s, repeats): (Vec<u64>, Vec<f64>, usize) = if opts.full {
        (
            cap_sites(opts, vec![200, 800, 3_200, 12_800, 25_600]),
            vec![200.0, 800.0, 3_200.0, 12_800.0, 51_200.0],
            rep(opts, 15),
        )
    } else {
        (
            cap_sites(opts, vec![200, 800]),
            vec![800.0, 3_200.0, 12_800.0],
            rep(opts, 4),
        )
    };
    let (uniform, exponential) = rr_figs::figure19(&sites, &d2s, repeats, opts.seed);
    emit_sim_rr(
        opts,
        "fig19_uniform",
        "Figure 19: uniform random delay",
        uniform,
    );
    emit_sim_rr(
        opts,
        "fig19_exponential",
        "Figure 19: exponential random delay",
        exponential,
    );
}
