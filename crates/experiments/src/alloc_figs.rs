//! Runners for the allocation figures: 5, 12 and 13.

use sdalloc_core::{AdaptiveIpr, Allocator, InformedRandomAllocator, RandomAllocator, StaticIpr};
use sdalloc_topology::workload::TtlDistribution;
use sdalloc_topology::Topology;

use crate::fill::{figure5_sweep, FillPoint};
use crate::steady::{allocations_at_half, Replacement};

/// The four Figure 5 algorithms, boxed for uniform handling.
pub fn figure5_algorithms() -> Vec<Box<dyn Allocator>> {
    vec![
        Box::new(RandomAllocator),
        Box::new(InformedRandomAllocator),
        Box::new(StaticIpr::three_band()),
        Box::new(StaticIpr::seven_band()),
    ]
}

/// The Figure 12 algorithm set.
pub fn figure12_algorithms() -> Vec<Box<dyn Allocator>> {
    vec![
        Box::new(AdaptiveIpr::aipr1()),
        Box::new(AdaptiveIpr::aipr2()),
        Box::new(AdaptiveIpr::aipr3()),
        Box::new(AdaptiveIpr::aipr4()),
        Box::new(AdaptiveIpr::hybrid()),
        Box::new(StaticIpr::three_band()),
        Box::new(StaticIpr::seven_band()),
    ]
}

/// The Figure 13 algorithm set (the paper plots AIPR-1, AIPR-2 and the
/// static controls).
pub fn figure13_algorithms() -> Vec<Box<dyn Allocator>> {
    vec![
        Box::new(AdaptiveIpr::aipr1()),
        Box::new(AdaptiveIpr::aipr2()),
        Box::new(StaticIpr::three_band()),
        Box::new(StaticIpr::seven_band()),
    ]
}

/// Figure 5: all four algorithms × all four TTL distributions.
pub fn figure5(topo: &Topology, sizes: &[u32], trials: usize, seed: u64) -> Vec<FillPoint> {
    let mut out = Vec::new();
    for alg in figure5_algorithms() {
        for dist in TtlDistribution::all_paper() {
            out.extend(figure5_sweep(
                topo,
                alg.as_ref(),
                &dist,
                sizes,
                trials,
                seed,
            ));
        }
    }
    out
}

/// One steady-state data point (Figures 12/13).
#[derive(Debug, Clone)]
pub struct SteadyPoint {
    /// Algorithm label.
    pub algorithm: String,
    /// Address-space size.
    pub space_size: u32,
    /// Allocations sustainable at ≤ 50 % clash probability per session
    /// lifetime.
    pub allocations_at_half: usize,
}

/// Figure 12: steady-state capacity under random churn, TTL
/// distribution ds4.
pub fn figure12(topo: &Topology, sizes: &[u32], repeats: usize, seed: u64) -> Vec<SteadyPoint> {
    steady_sweep(
        topo,
        figure12_algorithms(),
        sizes,
        Replacement::Random,
        repeats,
        seed,
    )
}

/// Figure 13: the upper bound — replacement preserves (site, TTL).
pub fn figure13(topo: &Topology, sizes: &[u32], repeats: usize, seed: u64) -> Vec<SteadyPoint> {
    steady_sweep(
        topo,
        figure13_algorithms(),
        sizes,
        Replacement::SameSiteAndTtl,
        repeats,
        seed,
    )
}

fn steady_sweep(
    topo: &Topology,
    algorithms: Vec<Box<dyn Allocator>>,
    sizes: &[u32],
    replacement: Replacement,
    repeats: usize,
    seed: u64,
) -> Vec<SteadyPoint> {
    let dist = TtlDistribution::ds4();
    let mut out = Vec::new();
    for alg in algorithms {
        for &size in sizes {
            let n = allocations_at_half(
                topo,
                alg.as_ref(),
                &dist,
                size,
                replacement,
                repeats,
                seed ^ (size as u64) << 16,
                (size as usize) * 6,
            );
            out.push(SteadyPoint {
                algorithm: alg.name(),
                space_size: size,
                allocations_at_half: n,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_topology::mbone::{MboneMap, MboneParams};

    fn small_mbone() -> Topology {
        MboneMap::generate(&MboneParams {
            seed: 11,
            target_nodes: 200,
        })
        .topo
    }

    #[test]
    fn figure5_produces_full_grid() {
        let topo = small_mbone();
        let pts = figure5(&topo, &[150], 2, 1);
        // 4 algorithms × 4 distributions × 1 size.
        assert_eq!(pts.len(), 16);
        let algs: std::collections::HashSet<&str> =
            pts.iter().map(|p| p.algorithm.as_str()).collect();
        assert_eq!(algs.len(), 4);
    }

    #[test]
    fn figure12_small_run() {
        let topo = small_mbone();
        let pts = figure12(&topo, &[150], 4, 2);
        assert_eq!(pts.len(), 7);
        for p in &pts {
            assert!(p.allocations_at_half >= 1, "{p:?}");
        }
        // IPR-7 (a near-perfect static control for ds4) should beat
        // IPR-3 (imperfect bands).
        let p7 = pts.iter().find(|p| p.algorithm == "IPR 7-band").unwrap();
        let p3 = pts.iter().find(|p| p.algorithm == "IPR 3-band").unwrap();
        assert!(
            p7.allocations_at_half >= p3.allocations_at_half,
            "IPR7 {} < IPR3 {}",
            p7.allocations_at_half,
            p3.allocations_at_half
        );
    }

    #[test]
    fn figure13_small_run() {
        let topo = small_mbone();
        let pts = figure13(&topo, &[120], 3, 3);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.allocations_at_half >= 1);
        }
    }
}
