//! The allocation world: active sessions on a topology, with the
//! announce/listen visibility rule and clash bookkeeping.
//!
//! Both Figure 5 (fill until clash) and Figures 12/13 (steady state)
//! run on this substrate.  Visibility is the paper's Section 2.1 rule:
//! a site sees exactly the sessions whose scope reaches it ("a session
//! directory at a particular location can only see sessions advertised
//! that will reach its location"), and a clash is two sessions on one
//! address whose scope zones overlap.
//!
//! These experiments assume *instant, lossless* announcements (the
//! paper's Figure 5 setting: "In this simulation we assume no packet
//! loss, and this gives unrealistically good results for the informed
//! schemes"); the delay/loss effects are modelled analytically in
//! Figure 6 and end-to-end in the SAP testbed.

use std::collections::HashMap;

use sdalloc_core::{Addr, AddrSpace, Allocator, View, VisibleSession};
use sdalloc_sim::SimRng;
use sdalloc_topology::{NodeId, Scope, ScopeCache, Topology};

/// One active session.
#[derive(Debug, Clone, Copy)]
pub struct ActiveSession {
    /// Where and how far.
    pub scope: Scope,
    /// The address it occupies.
    pub addr: Addr,
}

/// The allocation world.
pub struct World {
    scopes: ScopeCache,
    space: AddrSpace,
    sessions: Vec<ActiveSession>,
    by_addr: HashMap<Addr, Vec<usize>>,
}

impl World {
    /// Create an empty world over a topology and address space.
    pub fn new(topo: Topology, space: AddrSpace) -> World {
        World {
            scopes: ScopeCache::new(topo),
            space,
            sessions: Vec::new(),
            by_addr: HashMap::new(),
        }
    }

    /// The address space.
    pub fn space(&self) -> &AddrSpace {
        &self.space
    }

    /// The scope cache (shared tree/reach-set state).
    pub fn scopes_mut(&mut self) -> &mut ScopeCache {
        &mut self.scopes
    }

    /// Number of active sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no sessions are active.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Active sessions (including any clashing ones).
    pub fn sessions(&self) -> &[ActiveSession] {
        &self.sessions
    }

    /// Remove all sessions but keep the (expensive) scope cache.
    pub fn clear_sessions(&mut self) {
        self.sessions.clear();
        self.by_addr.clear();
    }

    /// The sessions visible at `site`: those whose announcements reach it.
    pub fn visible_at(&mut self, site: NodeId) -> Vec<VisibleSession> {
        let mut v: Vec<VisibleSession> = Vec::new();
        for s in &self.sessions {
            if self
                .scopes
                .spt()
                .tree(s.scope.source)
                .reaches(site, s.scope.ttl)
            {
                v.push(VisibleSession::new(s.addr, s.scope.ttl));
            }
        }
        v.sort_unstable_by_key(|s| (s.addr, s.ttl));
        v
    }

    /// Whether a new session `(scope, addr)` would clash with any active
    /// session: same address, overlapping scope zones.
    pub fn would_clash(&mut self, scope: Scope, addr: Addr) -> bool {
        let Some(users) = self.by_addr.get(&addr) else {
            return false;
        };
        let users = users.clone();
        users
            .iter()
            .any(|&i| self.scopes.zones_overlap(self.sessions[i].scope, scope))
    }

    /// Allocate an address for `scope` with `alg` using the visibility
    /// rule, insert the session, and report whether it clashed.
    /// Returns `None` when the allocator refuses (space full).
    pub fn allocate(
        &mut self,
        alg: &dyn Allocator,
        scope: Scope,
        rng: &mut SimRng,
    ) -> Option<(Addr, bool)> {
        let visible = self.visible_at(scope.source);
        let view = View::new(&visible);
        let addr = alg.allocate(&self.space, scope.ttl, &view, rng)?;
        let clash = self.would_clash(scope, addr);
        self.insert(ActiveSession { scope, addr });
        Some((addr, clash))
    }

    /// Insert a session directly (used to seed initial state).
    pub fn insert(&mut self, s: ActiveSession) {
        let idx = self.sessions.len();
        self.sessions.push(s);
        self.by_addr.entry(s.addr).or_default().push(idx);
    }

    /// Remove the session at `index`, returning it (swap-remove order).
    pub fn remove_at(&mut self, index: usize) -> ActiveSession {
        let removed = self.sessions.swap_remove(index);
        // Fix the by_addr index for the removed entry...
        let users = self.by_addr.get_mut(&removed.addr).expect("indexed");
        users.retain(|&i| i != index);
        if users.is_empty() {
            self.by_addr.remove(&removed.addr);
        }
        // ...and for the session that moved into `index`.
        if index < self.sessions.len() {
            let moved = self.sessions[index];
            let old = self.sessions.len(); // its previous index
            let users = self.by_addr.get_mut(&moved.addr).expect("indexed");
            for i in users.iter_mut() {
                if *i == old {
                    *i = index;
                }
            }
        }
        removed
    }

    /// Remove a uniformly random session.
    pub fn remove_random(&mut self, rng: &mut SimRng) -> ActiveSession {
        assert!(!self.sessions.is_empty(), "no sessions to remove");
        let i = rng.index(self.sessions.len());
        self.remove_at(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_core::InformedRandomAllocator;
    use sdalloc_sim::SimDuration;

    /// a0 - a1 -[16]- b0 - b1: two sites.
    fn two_sites() -> Topology {
        let mut t = Topology::new();
        let a0 = t.add_simple_node();
        let a1 = t.add_simple_node();
        let b0 = t.add_simple_node();
        let b1 = t.add_simple_node();
        let d = SimDuration::from_millis(1);
        t.add_link(a0, a1, 1, 1, d);
        t.add_link(a1, b0, 1, 16, d);
        t.add_link(b0, b1, 1, 1, d);
        t
    }

    #[test]
    fn visibility_follows_scope() {
        let mut w = World::new(two_sites(), AddrSpace::abstract_space(16));
        w.insert(ActiveSession {
            scope: Scope::new(NodeId(0), 15),
            addr: Addr(3),
        });
        w.insert(ActiveSession {
            scope: Scope::new(NodeId(3), 127),
            addr: Addr(5),
        });
        // At b1 (node 3): only the global session is visible.
        let at_b1 = w.visible_at(NodeId(3));
        assert_eq!(at_b1.len(), 1);
        assert_eq!(at_b1[0].addr, Addr(5));
        // At a0: both.
        let at_a0 = w.visible_at(NodeId(0));
        assert_eq!(at_a0.len(), 2);
    }

    #[test]
    fn clash_requires_same_addr_and_overlap() {
        let mut w = World::new(two_sites(), AddrSpace::abstract_space(16));
        w.insert(ActiveSession {
            scope: Scope::new(NodeId(0), 15),
            addr: Addr(3),
        });
        // Same address, non-overlapping site: no clash.
        assert!(!w.would_clash(Scope::new(NodeId(3), 15), Addr(3)));
        // Same address, overlapping: clash.
        assert!(w.would_clash(Scope::new(NodeId(1), 15), Addr(3)));
        assert!(w.would_clash(Scope::new(NodeId(3), 127), Addr(3)));
        // Different address: never.
        assert!(!w.would_clash(Scope::new(NodeId(1), 15), Addr(4)));
    }

    #[test]
    fn allocate_avoids_visible_sessions() {
        let mut w = World::new(two_sites(), AddrSpace::abstract_space(4));
        let mut rng = SimRng::new(1);
        let alg = InformedRandomAllocator;
        // Fill from node 0 at global scope: all allocations visible
        // everywhere, so informed-random never clashes until full.
        for k in 0..4 {
            let (_, clash) = w
                .allocate(&alg, Scope::new(NodeId(0), 127), &mut rng)
                .unwrap();
            assert!(!clash, "clash at allocation {k}");
        }
        assert!(w
            .allocate(&alg, Scope::new(NodeId(0), 127), &mut rng)
            .is_none());
    }

    #[test]
    fn invisible_sessions_cause_clashes() {
        let mut w = World::new(two_sites(), AddrSpace::abstract_space(1));
        let mut rng = SimRng::new(2);
        let alg = InformedRandomAllocator;
        // A site-local session at a0 is invisible at b1...
        let (a, clash) = w
            .allocate(&alg, Scope::new(NodeId(0), 15), &mut rng)
            .unwrap();
        assert!(!clash);
        assert_eq!(a, Addr(0));
        // ...so b1's global allocation picks the same address and clashes.
        let (b, clash) = w
            .allocate(&alg, Scope::new(NodeId(3), 127), &mut rng)
            .unwrap();
        assert_eq!(b, Addr(0));
        assert!(clash, "the TTL-scoping asymmetry must bite");
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut w = World::new(two_sites(), AddrSpace::abstract_space(16));
        for i in 0..6u32 {
            w.insert(ActiveSession {
                scope: Scope::new(NodeId(i % 4), 127),
                addr: Addr(i % 3), // shared addresses across sessions
            });
        }
        let mut rng = SimRng::new(3);
        // A TTL-255 scope from node 0 overlaps every zone, so
        // `would_clash` at that scope is exactly "address in use".
        let probe = Scope::new(NodeId(0), 255);
        while !w.is_empty() {
            let before = w.len();
            w.remove_random(&mut rng);
            assert_eq!(w.len(), before - 1);
            let mut present: Vec<Addr> = w.sessions().iter().map(|s| s.addr).collect();
            present.sort_unstable();
            present.dedup();
            for a in 0..3u32 {
                assert_eq!(
                    w.would_clash(probe, Addr(a)),
                    present.contains(&Addr(a)),
                    "by_addr inconsistent for {a} with {} sessions left",
                    w.len()
                );
            }
        }
    }

    #[test]
    fn clear_sessions_retains_cache() {
        let mut w = World::new(two_sites(), AddrSpace::abstract_space(8));
        w.insert(ActiveSession {
            scope: Scope::new(NodeId(0), 127),
            addr: Addr(0),
        });
        w.visible_at(NodeId(3));
        w.clear_sessions();
        assert!(w.is_empty());
        assert!(w.visible_at(NodeId(3)).is_empty());
    }
}
