//! Figure 5: fill the address space until the first clash.
//!
//! "Nodes in this graph were chosen at random as the originator of a
//! session, and the TTL for the session was chosen randomly from the
//! following distributions … The results of this simulation are shown
//! in figure 5 on a log/log graph."  Four algorithms (R, IR, IPR
//! 3-band, IPR 7-band) × four TTL distributions (ds1–ds4) × a sweep of
//! address-space sizes; the metric is the number of successful
//! allocations before the first clash.

use sdalloc_core::{AddrSpace, Allocator};
use sdalloc_sim::SimRng;
use sdalloc_topology::workload::{random_scope, TtlDistribution};
use sdalloc_topology::Topology;

use crate::world::World;

/// Allocate sessions on `world` until the first clash (or the allocator
/// gives up); returns the number of *clash-free* allocations made.
pub fn fill_until_clash(
    world: &mut World,
    alg: &dyn Allocator,
    dist: &TtlDistribution,
    rng: &mut SimRng,
    max_allocations: usize,
) -> usize {
    world.clear_sessions();
    let topo_nodes = world.scopes_mut().topology().node_count();
    debug_assert!(topo_nodes > 0);
    let mut count = 0usize;
    while count < max_allocations {
        let scope = {
            let topo = world.scopes_mut().topology();
            random_scope_on(topo, dist, rng)
        };
        match world.allocate(alg, scope, rng) {
            None => break,            // algorithm reports its partition full
            Some((_, true)) => break, // first clash
            Some((_, false)) => count += 1,
        }
    }
    count
}

fn random_scope_on(
    topo: &Topology,
    dist: &TtlDistribution,
    rng: &mut SimRng,
) -> sdalloc_topology::Scope {
    random_scope(topo, dist, rng)
}

/// One Figure 5 data point: mean allocations before clash.
#[derive(Debug, Clone)]
pub struct FillPoint {
    /// Algorithm label.
    pub algorithm: String,
    /// TTL distribution name.
    pub distribution: &'static str,
    /// Address-space size.
    pub space_size: u32,
    /// Mean clash-free allocations over the trials.
    pub mean_allocations: f64,
}

/// Run the Figure 5 sweep for one algorithm on a prepared world-per-size
/// factory.  `sizes` is the x-axis; `trials` the repetitions per point.
pub fn figure5_sweep(
    topo: &Topology,
    alg: &dyn Allocator,
    dist: &TtlDistribution,
    sizes: &[u32],
    trials: usize,
    seed: u64,
) -> Vec<FillPoint> {
    let mut out = Vec::new();
    for &size in sizes {
        // One world per size, reusing the per-size scope cache across
        // trials (the cache is workload-independent).
        let mut world = World::new(topo.clone(), AddrSpace::abstract_space(size));
        let mut rng = SimRng::new(seed ^ (size as u64).wrapping_mul(0x9E37_79B9));
        let mut total = 0usize;
        for _ in 0..trials {
            total += fill_until_clash(&mut world, alg, dist, &mut rng, size as usize * 8);
        }
        out.push(FillPoint {
            algorithm: alg.name(),
            distribution: dist.name,
            space_size: size,
            mean_allocations: total as f64 / trials as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_core::{AdaptiveIpr, InformedRandomAllocator, RandomAllocator, StaticIpr};
    use sdalloc_topology::mbone::{MboneMap, MboneParams};

    fn small_mbone() -> Topology {
        MboneMap::generate(&MboneParams {
            seed: 3,
            target_nodes: 300,
        })
        .topo
    }

    #[test]
    fn informed_beats_random() {
        let topo = small_mbone();
        let dist = TtlDistribution::ds4();
        let r = figure5_sweep(&topo, &RandomAllocator, &dist, &[400], 5, 1);
        let ir = figure5_sweep(&topo, &InformedRandomAllocator, &dist, &[400], 5, 1);
        assert!(
            ir[0].mean_allocations > r[0].mean_allocations,
            "IR {} should beat R {}",
            ir[0].mean_allocations,
            r[0].mean_allocations
        );
    }

    #[test]
    fn random_tracks_birthday_sqrt() {
        // Pure random should clash around sqrt-of-space scale, far below
        // the space size.
        let topo = small_mbone();
        let dist = TtlDistribution::ds1();
        let pts = figure5_sweep(&topo, &RandomAllocator, &dist, &[900], 10, 2);
        let m = pts[0].mean_allocations;
        assert!(m > 5.0 && m < 300.0, "R mean {m} out of birthday range");
    }

    #[test]
    fn ipr7_beats_ipr3_with_ds4() {
        // The headline Figure 5 ordering (perfect vs imperfect bands).
        let topo = small_mbone();
        let dist = TtlDistribution::ds4();
        let p3 = figure5_sweep(&topo, &StaticIpr::three_band(), &dist, &[600], 6, 3);
        let p7 = figure5_sweep(&topo, &StaticIpr::seven_band(), &dist, &[600], 6, 3);
        assert!(
            p7[0].mean_allocations > p3[0].mean_allocations,
            "IPR7 {} vs IPR3 {}",
            p7[0].mean_allocations,
            p3[0].mean_allocations
        );
    }

    #[test]
    fn adaptive_allocates_meaningfully() {
        let topo = small_mbone();
        let dist = TtlDistribution::ds4();
        let pts = figure5_sweep(&topo, &AdaptiveIpr::aipr1(), &dist, &[600], 4, 4);
        assert!(
            pts[0].mean_allocations > 20.0,
            "AIPR-1 {}",
            pts[0].mean_allocations
        );
    }

    #[test]
    fn local_scoping_helps_scaling() {
        // ds4 (heavily local) should allow more allocations than ds1 for
        // the informed schemes — "local scoping of sessions helps
        // scaling".
        let topo = small_mbone();
        let alg = StaticIpr::seven_band();
        let d1 = figure5_sweep(&topo, &alg, &TtlDistribution::ds1(), &[400], 6, 5);
        let d4 = figure5_sweep(&topo, &alg, &TtlDistribution::ds4(), &[400], 6, 5);
        assert!(
            d4[0].mean_allocations > d1[0].mean_allocations,
            "ds4 {} vs ds1 {}",
            d4[0].mean_allocations,
            d1[0].mean_allocations
        );
    }

    #[test]
    fn more_space_more_allocations() {
        let topo = small_mbone();
        let dist = TtlDistribution::ds4();
        let pts = figure5_sweep(&topo, &InformedRandomAllocator, &dist, &[100, 800], 6, 6);
        assert!(pts[1].mean_allocations > pts[0].mean_allocations);
    }
}
