//! What an allocator can see: the announce/listen view.
//!
//! "Schemes like IPRMA depend on the address allocator knowing a large
//! proportion of the addresses already in use.  Information about each
//! existing session is multicast with the same scope as the session" —
//! so an allocator's input is exactly the list of `(address, ttl)` pairs
//! whose announcements currently reach its site.  Everything else (who
//! originated a session, where it is) is invisible by construction.

use crate::addr::Addr;

/// One session as seen through the session directory: the address it
/// occupies and the TTL it was announced with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisibleSession {
    /// Allocated address (index into the shared [`crate::AddrSpace`]).
    pub addr: Addr,
    /// Announced session TTL.
    pub ttl: u8,
}

impl VisibleSession {
    /// Construct a visible session.
    pub fn new(addr: Addr, ttl: u8) -> Self {
        VisibleSession { addr, ttl }
    }
}

/// The set of sessions visible at an allocating site.
///
/// A thin wrapper over a slice so allocators can take a uniform input,
/// with the couple of derived views they all need.
#[derive(Debug, Clone, Copy)]
pub struct View<'a> {
    sessions: &'a [VisibleSession],
}

impl<'a> View<'a> {
    /// Wrap a slice of visible sessions.
    pub fn new(sessions: &'a [VisibleSession]) -> Self {
        View { sessions }
    }

    /// An empty view (a brand-new site that has heard nothing yet).
    pub fn empty() -> View<'static> {
        View { sessions: &[] }
    }

    /// All visible sessions.
    pub fn sessions(&self) -> &'a [VisibleSession] {
        self.sessions
    }

    /// Number of visible sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether nothing is visible.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Whether some visible session occupies `addr` (any TTL).
    pub fn in_use(&self, addr: Addr) -> bool {
        self.sessions.iter().any(|s| s.addr == addr)
    }

    /// Iterate sessions with TTL at least `min_ttl` — the subset
    /// Deterministic Adaptive IPRMA bases partition geometry on.
    pub fn with_ttl_at_least(&self, min_ttl: u8) -> impl Iterator<Item = VisibleSession> + 'a {
        self.sessions
            .iter()
            .copied()
            .filter(move |s| s.ttl >= min_ttl)
    }

    /// Sorted, deduplicated list of occupied addresses (any TTL).
    // lint:allow(hot-alloc): materializes the sorted occupancy set the allocator binary-searches repeatedly
    pub fn occupied(&self) -> Vec<Addr> {
        let mut v: Vec<Addr> = self.sessions.iter().map(|s| s.addr).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, u8)]) -> Vec<VisibleSession> {
        pairs
            .iter()
            .map(|&(a, t)| VisibleSession::new(Addr(a), t))
            .collect()
    }

    #[test]
    fn in_use_checks_any_ttl() {
        let s = v(&[(3, 15), (9, 127)]);
        let view = View::new(&s);
        assert!(view.in_use(Addr(3)));
        assert!(view.in_use(Addr(9)));
        assert!(!view.in_use(Addr(4)));
    }

    #[test]
    fn ttl_filter() {
        let s = v(&[(1, 15), (2, 63), (3, 127), (4, 63)]);
        let view = View::new(&s);
        let high: Vec<u32> = view.with_ttl_at_least(63).map(|x| x.addr.0).collect();
        assert_eq!(high, vec![2, 3, 4]);
        assert_eq!(view.with_ttl_at_least(200).count(), 0);
        assert_eq!(view.with_ttl_at_least(0).count(), 4);
    }

    #[test]
    fn occupied_sorted_dedup() {
        let s = v(&[(9, 15), (2, 63), (9, 127)]);
        let view = View::new(&s);
        assert_eq!(view.occupied(), vec![Addr(2), Addr(9)]);
    }

    #[test]
    fn empty_view() {
        let view = View::empty();
        assert!(view.is_empty());
        assert_eq!(view.len(), 0);
        assert!(!view.in_use(Addr(0)));
        assert!(view.occupied().is_empty());
    }
}
