//! The allocator interface and the two baseline algorithms.
//!
//! * **R — pure random allocation**: pick uniformly from the whole
//!   space, ignoring everything.  Expected to clash after O(√n)
//!   allocations (the birthday problem, Figure 4).
//! * **IR — informed random allocation**: "an address is not allocated
//!   if it is seen in another session announcement" — uniform over the
//!   addresses not currently visible in use.  The paper's Figure 5
//!   finding is that this is *not* a great improvement over R, because
//!   locally-scoped sessions elsewhere are invisible.
//!
//! The partitioned algorithms live in [`crate::static_ipr`] and
//! [`crate::adaptive`]; all share the [`Allocator`] trait.

use sdalloc_sim::SimRng;

use crate::addr::{Addr, AddrSpace};
use crate::view::View;

/// A multicast address allocation algorithm.
///
/// Allocators are deliberately stateless between calls: in the session
/// directory architecture every sdr instance recomputes its decision
/// from the announcements it currently hears (the `view`), so state
/// lives in the announcement cache, not the algorithm.  The `Send`
/// bound lets a boxed allocator move onto a background agent thread.
pub trait Allocator: Send {
    /// Short name used in figures ("R", "IR", "IPR 3-band", …).
    fn name(&self) -> String;

    /// Choose an address for a new session with the given TTL, given the
    /// sessions visible at this site.  Returns `None` when the algorithm
    /// considers its (partition of the) space full.
    fn allocate(
        &self,
        space: &AddrSpace,
        ttl: u8,
        view: &View<'_>,
        rng: &mut SimRng,
    ) -> Option<Addr>;

    /// The `[lo, hi)` address range this algorithm would draw from for
    /// a session of the given TTL — the diagnostic counterpart of
    /// [`Self::allocate`], used to label degradation events with the
    /// band that was exhausted.  Unpartitioned algorithms (and the
    /// default) report the whole space.
    fn partition_range(&self, space: &AddrSpace, _ttl: u8, _view: &View<'_>) -> (u32, u32) {
        (0, space.size())
    }

    /// Graceful-degradation allocation: try [`Self::allocate`] first,
    /// and when the algorithm's own partition is exhausted fall back to
    /// an informed-random pick over the *whole* space — trading the
    /// partition discipline for availability.  The outcome records
    /// whether widening happened so callers can log a degradation event
    /// (a widened address may clash with sessions the partitioning was
    /// protecting; the clash protocol remains the safety net).  Returns
    /// `None` only when every address in the space is visibly in use.
    fn allocate_or_widen(
        &self,
        space: &AddrSpace,
        ttl: u8,
        view: &View<'_>,
        rng: &mut SimRng,
    ) -> Option<AllocOutcome> {
        let band = self.partition_range(space, ttl, view);
        if let Some(addr) = self.allocate(space, ttl, view, rng) {
            return Some(AllocOutcome {
                addr,
                widened: false,
                band,
            });
        }
        let used = view.occupied();
        pick_free_in_range(0, space.size(), &used, rng).map(|addr| AllocOutcome {
            addr,
            widened: true,
            band,
        })
    }
}

/// Result of [`Allocator::allocate_or_widen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocOutcome {
    /// The allocated address.
    pub addr: Addr,
    /// Whether the allocator had to widen beyond its own partition —
    /// the signal for a logged degradation event.
    pub widened: bool,
    /// The `[lo, hi)` range the algorithm's partition discipline would
    /// have drawn from ([`Allocator::partition_range`]).  When
    /// `widened` is set this is the band that was exhausted.
    pub band: (u32, u32),
}

/// Uniformly pick an address from `range` (lo..hi within `space`) that is
/// not in `used` (a sorted, deduplicated list).  Returns `None` when the
/// range is exhausted.
///
/// Strategy: rejection-sample a few times (cheap when sparsely used),
/// then fall back to exact rank selection over the free set so full
/// ranges still terminate and stay uniform.
// lint:allow(panic-reach): slice bounds come from partition_point over the same slice; windows(2) chunks have exactly two elements
pub(crate) fn pick_free_in_range(
    lo: u32,
    hi: u32,
    used: &[Addr],
    rng: &mut SimRng,
) -> Option<Addr> {
    assert!(lo <= hi, "inverted range");
    debug_assert!(
        used.windows(2).all(|w| w[0] < w[1]),
        "used list must be sorted and deduplicated"
    );
    let width = hi - lo;
    if width == 0 {
        return None;
    }
    let used_in_range = {
        let start = used.partition_point(|a| a.0 < lo);
        let end = used.partition_point(|a| a.0 < hi);
        &used[start..end]
    };
    let free = width as usize - used_in_range.len();
    if free == 0 {
        return None;
    }
    // Rejection sampling while the hit rate is decent.
    if free * 4 >= width as usize {
        for _ in 0..32 {
            let cand = Addr(lo + rng.below(width as u64) as u32);
            if used_in_range.binary_search(&cand).is_err() {
                return Some(cand);
            }
        }
    }
    // Exact: pick the k-th free address.
    let mut k = rng.below(free as u64) as u32;
    let mut cursor = lo;
    for &u in used_in_range {
        let gap = u.0 - cursor;
        if k < gap {
            return Some(Addr(cursor + k));
        }
        k -= gap;
        cursor = u.0 + 1;
    }
    Some(Addr(cursor + k))
}

/// R: pure random allocation over the whole space.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomAllocator;

impl Allocator for RandomAllocator {
    fn name(&self) -> String {
        "R".to_string()
    }

    fn allocate(
        &self,
        space: &AddrSpace,
        _ttl: u8,
        _view: &View<'_>,
        rng: &mut SimRng,
    ) -> Option<Addr> {
        Some(Addr(rng.below(space.size() as u64) as u32))
    }
}

/// IR: informed random — uniform over addresses not visible in use.
#[derive(Debug, Clone, Copy, Default)]
pub struct InformedRandomAllocator;

impl Allocator for InformedRandomAllocator {
    fn name(&self) -> String {
        "IR".to_string()
    }

    fn allocate(
        &self,
        space: &AddrSpace,
        _ttl: u8,
        view: &View<'_>,
        rng: &mut SimRng,
    ) -> Option<Addr> {
        let used = view.occupied();
        pick_free_in_range(0, space.size(), &used, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::VisibleSession;

    fn view_of(pairs: &[(u32, u8)]) -> Vec<VisibleSession> {
        pairs
            .iter()
            .map(|&(a, t)| VisibleSession::new(Addr(a), t))
            .collect()
    }

    #[test]
    fn random_ignores_view() {
        let space = AddrSpace::abstract_space(4);
        let sessions = view_of(&[(0, 127), (1, 127), (2, 127)]);
        let view = View::new(&sessions);
        let mut rng = SimRng::new(1);
        let mut hit_used = false;
        for _ in 0..100 {
            let a = RandomAllocator
                .allocate(&space, 127, &view, &mut rng)
                .unwrap();
            assert!(space.contains(a));
            if a.0 < 3 {
                hit_used = true;
            }
        }
        assert!(hit_used, "pure random should sometimes pick used addresses");
    }

    #[test]
    fn informed_random_avoids_visible() {
        let space = AddrSpace::abstract_space(10);
        let sessions = view_of(&[(0, 1), (3, 63), (9, 191)]);
        let view = View::new(&sessions);
        let mut rng = SimRng::new(2);
        for _ in 0..200 {
            let a = InformedRandomAllocator
                .allocate(&space, 127, &view, &mut rng)
                .unwrap();
            assert!(![0, 3, 9].contains(&a.0), "allocated visible address {a}");
        }
    }

    #[test]
    fn informed_random_exhausts() {
        let space = AddrSpace::abstract_space(3);
        let sessions = view_of(&[(0, 1), (1, 1), (2, 1)]);
        let view = View::new(&sessions);
        let mut rng = SimRng::new(3);
        assert_eq!(
            InformedRandomAllocator.allocate(&space, 15, &view, &mut rng),
            None
        );
    }

    #[test]
    fn informed_random_finds_last_free() {
        let space = AddrSpace::abstract_space(5);
        let sessions = view_of(&[(0, 1), (1, 1), (3, 1), (4, 1)]);
        let view = View::new(&sessions);
        let mut rng = SimRng::new(4);
        for _ in 0..20 {
            assert_eq!(
                InformedRandomAllocator.allocate(&space, 15, &view, &mut rng),
                Some(Addr(2))
            );
        }
    }

    #[test]
    fn pick_free_uniformity() {
        // Free addresses {1, 4, 7}; each should be picked ~1/3 of the time.
        let used: Vec<Addr> = [0u32, 2, 3, 5, 6].iter().map(|&a| Addr(a)).collect();
        let mut rng = SimRng::new(5);
        let mut counts = [0u32; 8];
        for _ in 0..30_000 {
            let a = pick_free_in_range(0, 8, &used, &mut rng).unwrap();
            counts[a.0 as usize] += 1;
        }
        for free in [1usize, 4, 7] {
            let frac = counts[free] as f64 / 30_000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "addr {free} frac {frac}");
        }
        for usedi in [0usize, 2, 3, 5, 6] {
            assert_eq!(counts[usedi], 0);
        }
    }

    #[test]
    fn pick_free_respects_subrange() {
        let used: Vec<Addr> = vec![];
        let mut rng = SimRng::new(6);
        for _ in 0..100 {
            let a = pick_free_in_range(10, 20, &used, &mut rng).unwrap();
            assert!((10..20).contains(&a.0));
        }
    }

    #[test]
    fn pick_free_empty_range() {
        let mut rng = SimRng::new(7);
        assert_eq!(pick_free_in_range(5, 5, &[], &mut rng), None);
    }

    #[test]
    fn pick_free_dense_range_exact_path() {
        // 1000 addresses, 999 used: always returns the single free one.
        let used: Vec<Addr> = (0..1000u32).filter(|&a| a != 613).map(Addr).collect();
        let mut rng = SimRng::new(8);
        for _ in 0..10 {
            assert_eq!(
                pick_free_in_range(0, 1000, &used, &mut rng),
                Some(Addr(613))
            );
        }
    }

    #[test]
    fn names() {
        assert_eq!(RandomAllocator.name(), "R");
        assert_eq!(InformedRandomAllocator.name(), "IR");
    }

    #[test]
    fn widen_not_needed_when_partition_has_room() {
        let space = AddrSpace::abstract_space(16);
        let sessions = view_of(&[(0, 127)]);
        let view = View::new(&sessions);
        let mut rng = SimRng::new(9);
        let out = InformedRandomAllocator
            .allocate_or_widen(&space, 127, &view, &mut rng)
            .unwrap();
        assert!(!out.widened);
        assert_ne!(out.addr, Addr(0));
    }

    #[test]
    fn widen_escapes_full_band() {
        use crate::static_ipr::StaticIpr;
        // Three equal bands over 12 addresses; fill the band for a
        // low-TTL session so the banded allocator refuses, then check
        // the fallback widens into the rest of the space.
        let space = AddrSpace::abstract_space(12);
        let alg = StaticIpr::three_band();
        let (lo, hi) = alg.band_range(alg.band_of(15), space.size());
        let sessions: Vec<VisibleSession> =
            (lo..hi).map(|a| VisibleSession::new(Addr(a), 15)).collect();
        let view = View::new(&sessions);
        let mut rng = SimRng::new(10);
        assert_eq!(alg.allocate(&space, 15, &view, &mut rng), None);
        let out = alg
            .allocate_or_widen(&space, 15, &view, &mut rng)
            .expect("space has free addresses outside the band");
        assert!(out.widened);
        assert!(!(lo..hi).contains(&out.addr.0), "widened outside the band");
        assert!(space.contains(out.addr));
        assert_eq!(out.band, (lo, hi), "outcome labels the exhausted band");
    }

    #[test]
    fn default_partition_range_is_whole_space() {
        let space = AddrSpace::abstract_space(16);
        assert_eq!(
            InformedRandomAllocator.partition_range(&space, 127, &View::empty()),
            (0, 16)
        );
        let mut rng = SimRng::new(12);
        let out = InformedRandomAllocator
            .allocate_or_widen(&space, 127, &View::empty(), &mut rng)
            .unwrap();
        assert_eq!(out.band, (0, 16));
    }

    #[test]
    fn widen_refuses_only_when_space_truly_full() {
        let space = AddrSpace::abstract_space(3);
        let sessions = view_of(&[(0, 1), (1, 1), (2, 1)]);
        let view = View::new(&sessions);
        let mut rng = SimRng::new(11);
        assert!(InformedRandomAllocator
            .allocate_or_widen(&space, 15, &view, &mut rng)
            .is_none());
    }
}
