//! Static Informed Partitioned Random allocation (IPRMA, Section 2.1).
//!
//! The address space is split into fixed equal ranges, one per TTL band;
//! a session's TTL selects the band and the allocator picks a random
//! address within it that is not visible in use.  The paper simulates
//! two variants:
//!
//! * **IPR 3-band** — bands separated at TTLs 15 and 64.  This is the
//!   *imperfect* partitioning of Figure 3: European TTL-47 national
//!   sessions and TTL-63 Europe-wide sessions share the middle band, so
//!   a Scandinavian allocator cannot see UK-national allocations that a
//!   Europe-wide session would clash with.
//! * **IPR 7-band** — separated at TTLs 2, 16, 32, 48, 64 and 128:
//!   "basically perfect partitioning" for the ds distributions, since
//!   every canonical TTL lands in its own band.

use sdalloc_sim::SimRng;

use crate::addr::{Addr, AddrSpace};
use crate::alloc::{pick_free_in_range, Allocator};
use crate::view::View;

/// Static informed-partitioned-random allocator with fixed TTL bands.
///
/// ```
/// use sdalloc_core::{StaticIpr, Allocator, AddrSpace, View};
/// use sdalloc_sim::SimRng;
/// let alg = StaticIpr::seven_band();
/// let space = AddrSpace::abstract_space(700);
/// let mut rng = SimRng::new(1);
/// // A TTL-15 session lands in band 1 (TTLs 3..=16): addresses 100..200.
/// let addr = alg.allocate(&space, 15, &View::empty(), &mut rng).unwrap();
/// assert!((100..200).contains(&addr.0));
/// ```
#[derive(Debug, Clone)]
pub struct StaticIpr {
    /// Band upper TTL separators, ascending; the last entry must be 255.
    /// Band `i` covers TTLs `(sep[i-1], sep[i]]` (band 0 from TTL 0).
    separators: Vec<u8>,
    label: String,
}

impl StaticIpr {
    /// Build from ascending TTL separators; 255 is appended if missing.
    // lint:allow(panic-reach): windows(2) chunks have exactly two elements
    pub fn new(mut separators: Vec<u8>) -> StaticIpr {
        assert!(!separators.is_empty(), "need at least one band");
        assert!(
            separators.windows(2).all(|w| w[0] < w[1]),
            "separators must be strictly ascending"
        );
        if separators.last() != Some(&255) {
            separators.push(255);
        }
        let label = format!("IPR {}-band", separators.len());
        StaticIpr { separators, label }
    }

    /// The paper's 3-band configuration (separated at TTLs 15 and 64).
    pub fn three_band() -> StaticIpr {
        StaticIpr::new(vec![15, 64])
    }

    /// The paper's 7-band configuration (separated at 2, 16, 32, 48, 64
    /// and 128).
    pub fn seven_band() -> StaticIpr {
        StaticIpr::new(vec![2, 16, 32, 48, 64, 128])
    }

    /// Number of bands.
    pub fn bands(&self) -> usize {
        self.separators.len()
    }

    /// Which band a TTL falls into.
    pub fn band_of(&self, ttl: u8) -> usize {
        self.separators.partition_point(|&s| s < ttl)
    }

    /// The address range `[lo, hi)` of band `band` in a space of `size`
    /// addresses: equal split, remainder to the last band.
    pub fn band_range(&self, band: usize, size: u32) -> (u32, u32) {
        debug_assert!(band < self.bands(), "band index {band} out of range");
        let k = self.bands() as u32;
        let width = size / k;
        let lo = band as u32 * width;
        let hi = if band + 1 == self.bands() {
            size
        } else {
            lo + width
        };
        debug_assert!(
            lo <= hi && hi <= size,
            "band range [{lo},{hi}) escapes the space"
        );
        (lo, hi)
    }
}

impl Allocator for StaticIpr {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn allocate(
        &self,
        space: &AddrSpace,
        ttl: u8,
        view: &View<'_>,
        rng: &mut SimRng,
    ) -> Option<Addr> {
        let band = self.band_of(ttl);
        let (lo, hi) = self.band_range(band, space.size());
        let used = view.occupied();
        pick_free_in_range(lo, hi, &used, rng)
    }

    fn partition_range(&self, space: &AddrSpace, ttl: u8, _view: &View<'_>) -> (u32, u32) {
        self.band_range(self.band_of(ttl), space.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::VisibleSession;

    #[test]
    fn three_band_mapping() {
        let a = StaticIpr::three_band();
        assert_eq!(a.bands(), 3);
        // Band 0: TTL 0..=15; band 1: 16..=64; band 2: 65..=255.
        assert_eq!(a.band_of(1), 0);
        assert_eq!(a.band_of(15), 0);
        assert_eq!(a.band_of(31), 1);
        assert_eq!(a.band_of(47), 1);
        assert_eq!(a.band_of(63), 1);
        assert_eq!(a.band_of(64), 1);
        assert_eq!(a.band_of(127), 2);
        assert_eq!(a.band_of(191), 2);
    }

    #[test]
    fn seven_band_separates_canonical_ttls() {
        let a = StaticIpr::seven_band();
        assert_eq!(a.bands(), 7);
        let ttls = [1u8, 15, 31, 47, 63, 127, 191];
        let bands: Vec<usize> = ttls.iter().map(|&t| a.band_of(t)).collect();
        let mut dedup = bands.clone();
        dedup.dedup();
        assert_eq!(bands.len(), dedup.len(), "bands {bands:?} not distinct");
        assert_eq!(bands, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn band_ranges_tile_the_space() {
        let a = StaticIpr::seven_band();
        let size = 1000u32;
        let mut expected_lo = 0;
        for b in 0..a.bands() {
            let (lo, hi) = a.band_range(b, size);
            assert_eq!(lo, expected_lo);
            assert!(hi > lo);
            expected_lo = hi;
        }
        assert_eq!(expected_lo, size);
    }

    #[test]
    fn allocates_inside_own_band() {
        let a = StaticIpr::three_band();
        let space = AddrSpace::abstract_space(300);
        let view = View::empty();
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            let low = a.allocate(&space, 15, &view, &mut rng).unwrap();
            assert!(low.0 < 100, "TTL-15 outside band 0: {low}");
            let mid = a.allocate(&space, 63, &view, &mut rng).unwrap();
            assert!((100..200).contains(&mid.0), "TTL-63 outside band 1: {mid}");
            let high = a.allocate(&space, 191, &view, &mut rng).unwrap();
            assert!(high.0 >= 200, "TTL-191 outside band 2: {high}");
        }
    }

    #[test]
    fn band_fills_up_independently() {
        let a = StaticIpr::three_band();
        let space = AddrSpace::abstract_space(9); // 3 addresses per band
                                                  // Fill band 0 (addresses 0..3).
        let sessions: Vec<VisibleSession> = (0..3u32)
            .map(|i| VisibleSession::new(Addr(i), 15))
            .collect();
        let view = View::new(&sessions);
        let mut rng = SimRng::new(2);
        assert_eq!(a.allocate(&space, 15, &view, &mut rng), None);
        // Other bands still allocate.
        assert!(a.allocate(&space, 63, &view, &mut rng).is_some());
        assert!(a.allocate(&space, 191, &view, &mut rng).is_some());
    }

    #[test]
    fn avoids_visible_addresses_cross_band() {
        // A visible session in *any* band blocks its address.
        let a = StaticIpr::three_band();
        let space = AddrSpace::abstract_space(30);
        let sessions = vec![VisibleSession::new(Addr(12), 63)];
        let view = View::new(&sessions);
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            let got = a.allocate(&space, 63, &view, &mut rng).unwrap();
            assert_ne!(got, Addr(12));
        }
    }

    #[test]
    fn custom_separators_appends_255() {
        let a = StaticIpr::new(vec![10, 100]);
        assert_eq!(a.bands(), 3);
        assert_eq!(a.band_of(255), 2);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_separators_rejected() {
        StaticIpr::new(vec![64, 15]);
    }

    #[test]
    fn names() {
        assert_eq!(StaticIpr::three_band().name(), "IPR 3-band");
        assert_eq!(StaticIpr::seven_band().name(), "IPR 7-band");
    }
}
