//! Detecting and correcting allocation clashes (Section 3).
//!
//! "Given the decentralised mechanisms used, we cannot guarantee that
//! clashes will not occur, but we can detect those that do occur and
//! provide a mechanism to cause an announcement to be modified."
//!
//! The paper's three-phase approach, implemented here as a per-site
//! state machine driven by the session directory's announcement stream:
//!
//! 1. A site whose **long-standing** session clashes re-sends its own
//!    announcement immediately (typically after a healed network
//!    partition) — existing sessions defend their addresses.
//! 2. A site that **just announced** (within a small window) and sees a
//!    clash assumes it lost the race (propagation delay) and immediately
//!    re-announces with a **modified address**.
//! 3. A **third party** that sees a new announcement clash with a cached
//!    session waits a random delay (exponential suppression, Section
//!    3.1) for the originator or another third party to react, then
//!    re-announces the cached session on the originator's behalf —
//!    covering originators that are partitioned away or temporarily
//!    deaf.
//!
//! The rule "existing sessions will not be disrupted by new sessions"
//! falls out of phases 1 and 3: the *newer* announcement is always the
//! one modified.

use sdalloc_sim::suppression::exponential_delay;
use sdalloc_sim::{SimDuration, SimRng, SimTime};
use sdalloc_telemetry::{CounterId, HistogramId, Severity, Telemetry, NO_ARG};

use crate::addr::Addr;

/// Identifies a session globally (originating site id, local session
/// number) — the moral equivalent of SAP's (source, msg-id hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId {
    /// Originating site.
    pub site: u32,
    /// Per-site sequence number.
    pub seq: u32,
}

/// Configuration of the clash responder.
#[derive(Debug, Clone)]
pub struct ClashPolicy {
    /// How recently a session must have been announced for a clash to be
    /// attributed to propagation delay (phase 2 vs phase 1).
    pub recent_window: SimDuration,
    /// Earliest third-party response delay: "D1 is chosen so that the
    /// originator of an announcement can be expected to have had a
    /// chance to reply and suppress all other receivers."
    pub d1: SimDuration,
    /// Latest third-party response delay.
    pub d2: SimDuration,
    /// Bucket width (max RTT scale) for the exponential delay.
    pub rtt: SimDuration,
}

impl Default for ClashPolicy {
    fn default() -> Self {
        ClashPolicy {
            recent_window: SimDuration::from_secs(10),
            d1: SimDuration::from_millis(500),
            d2: SimDuration::from_secs(8),
            rtt: SimDuration::from_millis(200),
        }
    }
}

/// What the responder wants the session directory to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClashAction {
    /// Phase 1: re-send our own announcement for `session` unchanged,
    /// immediately.
    DefendOwn {
        /// The long-standing session to defend.
        session: SessionId,
    },
    /// Phase 2: our recent announcement lost the race; re-announce
    /// `session` with a freshly allocated address.
    ModifyOwn {
        /// The recently announced session to move.
        session: SessionId,
        /// The clashing address to abandon.
        old_addr: Addr,
    },
    /// Phase 3 (armed): we will defend the cached session at `fire_at`
    /// unless someone else acts first.
    ThirdPartyArmed {
        /// The cached session we may defend.
        session: SessionId,
        /// When our timer expires.
        fire_at: SimTime,
    },
    /// Phase 3 (fired): re-announce the cached `session` on behalf of
    /// its originator.
    DefendThirdParty {
        /// The cached session to defend.
        session: SessionId,
    },
}

/// A pending third-party defence timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PendingDefense {
    /// The cached session we may defend.
    pub session: SessionId,
    /// The clashing address the defence is about.
    pub addr: Addr,
    /// When the timer expires.
    pub fire_at: SimTime,
}

/// Our relationship to the session already holding an address when a
/// clashing announcement arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Incumbent {
    /// We originated it, first announced at the contained time.
    Ours {
        /// When we first announced it.
        announced_at: SimTime,
        /// Whether we win the deterministic tiebreak against the
        /// clashing announcer.  The paper leaves the two-long-standing-
        /// sessions case (post-partition-heal) unresolved — "it may
        /// retract its own announcement or tell the other announcer to
        /// perform the retraction, or both" — so implementations need a
        /// total order to avoid a mutual-defence livelock; we use the
        /// (origin address, session id) tuple, lowest keeps the address.
        wins_tiebreak: bool,
    },
    /// Someone else's session, present in our cache.
    Cached,
}

/// The responder's pure protocol state: the armed third-party defence
/// timers, kept sorted by `(fire_at, session, addr)` so equal protocol
/// states have equal representations (the model checker hashes them).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClashState {
    // lint:allow(unbounded-growth): drained by clash_step via a worked copy (next.pending.retain), which the per-struct scan cannot attribute
    // lint:bounded: one entry per armed defence, removed when it fires or is suppressed — length tracks concurrent clashes, not cache size
    pending: Vec<PendingDefense>,
}

impl ClashState {
    /// The empty state: nothing armed.
    pub fn new() -> Self {
        ClashState::default()
    }

    /// Number of armed third-party defences.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Earliest pending defence expiry, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.iter().map(|p| p.fire_at).min()
    }

    /// The armed defences, in canonical order.
    pub fn pending(&self) -> &[PendingDefense] {
        &self.pending
    }

    /// Arm `defense` without the per-`(session, addr)` idempotence check
    /// of [`clash_step`].  Fault-injection hook: the model checker's
    /// seeded-violation tests use it to rebuild the pre-fix double-arm
    /// behaviour and prove the checker catches it.  Not for protocol
    /// drivers — duplicated timers mean duplicated authoritative
    /// responses.
    pub fn arm_unchecked(&mut self, defense: PendingDefense) {
        self.pending.push(defense);
        self.pending
            .sort_unstable_by_key(|p| (p.fire_at, p.session, p.addr));
    }
}

/// An input to the clash responder machine.
///
/// The driver (the session directory, or the model checker) owns the
/// clock and the RNG: `Clash` carries the pre-sampled third-party delay
/// and `Poll` carries the current time, so the transition function
/// itself is pure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClashEvent {
    /// A new announcement arrived using `addr`, which our cache says
    /// `incumbent` already holds for `incumbent_session`.
    Clash {
        /// Current time.
        now: SimTime,
        /// The contested address.
        addr: Addr,
        /// The session our cache says holds `addr`.
        incumbent_session: SessionId,
        /// Our relationship to that session.
        incumbent: Incumbent,
        /// Pre-sampled third-party response delay (used only when
        /// `incumbent` is [`Incumbent::Cached`]; the driver draws it
        /// from [`exponential_delay`] over `[D1, D2]`).
        third_party_delay: SimDuration,
    },
    /// An announcement for `session` was heard (the originator defended,
    /// or another third party beat us to it).
    AnnouncementSeen {
        /// The announced session.
        session: SessionId,
    },
    /// The clash on `addr` was resolved another way (the new session
    /// moved off it).
    ClashResolved {
        /// The address no longer contested.
        addr: Addr,
    },
    /// Time advanced to `now`: expired defence timers fire.
    Poll {
        /// Current time.
        now: SimTime,
    },
}

/// Advance the clash responder by one event.  Pure: same
/// `(state, event)` always yields the same `(state', actions)`.
///
/// Arming is **idempotent per `(session, addr)`**: a duplicated or
/// re-delivered clash announcement re-reports the already-armed timer
/// instead of arming a second one.  (The bounded model checker found
/// the double-arm: under message duplication a site with two timers for
/// one session fires two third-party defences — two authoritative
/// responses to one clash.)
// lint:allow(hot-alloc): pure-functional protocol step: returns the successor state and its actions by value
pub fn clash_step(
    policy: &ClashPolicy,
    state: &ClashState,
    event: &ClashEvent,
) -> (ClashState, Vec<ClashAction>) {
    let mut next = state.clone();
    let mut actions = Vec::new();
    match *event {
        ClashEvent::Clash {
            now,
            addr,
            incumbent_session,
            incumbent,
            third_party_delay,
        } => match incumbent {
            Incumbent::Ours {
                announced_at,
                wins_tiebreak,
            } => {
                if now.saturating_since(announced_at) <= policy.recent_window {
                    // Phase 2: we only just announced; the clash is
                    // probably propagation delay and we yield.
                    actions.push(ClashAction::ModifyOwn {
                        session: incumbent_session,
                        old_addr: addr,
                    });
                } else if wins_tiebreak {
                    // Phase 1: long-standing session defends itself.
                    actions.push(ClashAction::DefendOwn {
                        session: incumbent_session,
                    });
                } else {
                    // Both sessions are long-standing (a healed
                    // partition): the tiebreak loser moves.
                    actions.push(ClashAction::ModifyOwn {
                        session: incumbent_session,
                        old_addr: addr,
                    });
                }
            }
            Incumbent::Cached => {
                let existing = next
                    .pending
                    .iter()
                    .find(|p| p.session == incumbent_session && p.addr == addr);
                let fire_at = match existing {
                    // Already armed for this clash: keep the original
                    // timer — never two defences for one clash.
                    Some(p) => p.fire_at,
                    None => {
                        let fire_at = now + third_party_delay;
                        next.pending.push(PendingDefense {
                            session: incumbent_session,
                            addr,
                            fire_at,
                        });
                        next.pending
                            .sort_unstable_by_key(|p| (p.fire_at, p.session, p.addr));
                        fire_at
                    }
                };
                actions.push(ClashAction::ThirdPartyArmed {
                    session: incumbent_session,
                    fire_at,
                });
            }
        },
        ClashEvent::AnnouncementSeen { session } => {
            next.pending.retain(|p| p.session != session);
        }
        ClashEvent::ClashResolved { addr } => {
            next.pending.retain(|p| p.addr != addr);
        }
        ClashEvent::Poll { now } => {
            next.pending.retain(|p| {
                if p.fire_at <= now {
                    actions.push(ClashAction::DefendThirdParty { session: p.session });
                    false
                } else {
                    true
                }
            });
        }
    }
    (next, actions)
}

/// Pre-registered metric ids for the clash responder (registration is
/// idempotent, so rebuilding them against a preserved [`Telemetry`]
/// after a restart reuses the existing slots).
#[derive(Debug, Clone, Copy)]
struct ClashMetrics {
    defend_own: CounterId,
    modify_own: CounterId,
    armed: CounterId,
    fired: CounterId,
    /// Sampled third-party defence delay, milliseconds.
    delay_ms: HistogramId,
}

impl ClashMetrics {
    /// Bucket bounds for the defence-delay histogram (ms): the paper's
    /// `[D1, D2]` window is 0.5–8 s, so the buckets straddle it.
    const DELAY_BOUNDS_MS: [u64; 6] = [250, 500, 1_000, 2_000, 4_000, 8_000];

    fn register(t: &mut Telemetry) -> Self {
        ClashMetrics {
            defend_own: t.counter("clash.defend_own"),
            modify_own: t.counter("clash.modify_own"),
            armed: t.counter("clash.third_party_armed"),
            fired: t.counter("clash.third_party_fired"),
            delay_ms: t.histogram("clash.defence_delay_ms", &Self::DELAY_BOUNDS_MS),
        }
    }
}

/// The per-site clash responder: a thin driver over [`clash_step`] that
/// owns the policy, samples the third-party delay, and records its
/// decisions into a [`Telemetry`] bundle (the pure [`clash_step`]
/// itself stays uninstrumented so the model checker drives it
/// unchanged).
#[derive(Debug, Clone)]
pub struct ClashResponder {
    policy: ClashPolicy,
    state: ClashState,
    telemetry: Telemetry,
    metrics: ClashMetrics,
}

impl ClashResponder {
    /// Create a responder with the given policy and a disabled
    /// telemetry bundle (drivers that want traces swap one in with
    /// [`ClashResponder::set_telemetry`]).
    pub fn new(policy: ClashPolicy) -> Self {
        Self::with_telemetry(policy, Telemetry::disabled())
    }

    /// Create a responder recording into `telemetry`.
    pub fn with_telemetry(policy: ClashPolicy, mut telemetry: Telemetry) -> Self {
        let metrics = ClashMetrics::register(&mut telemetry);
        ClashResponder {
            policy,
            state: ClashState::new(),
            telemetry,
            metrics,
        }
    }

    /// The responder's telemetry bundle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Replace the telemetry bundle (counters re-register
    /// idempotently) — used to carry accumulated metrics across a
    /// directory restart, which rebuilds the responder.
    pub fn set_telemetry(&mut self, mut telemetry: Telemetry) {
        self.metrics = ClashMetrics::register(&mut telemetry);
        self.telemetry = telemetry;
    }

    /// Move the telemetry bundle out (leaving a disabled one behind).
    pub fn take_telemetry(&mut self) -> Telemetry {
        std::mem::replace(&mut self.telemetry, Telemetry::disabled())
    }

    /// Handle a detected clash: a new announcement arrived using `addr`,
    /// which our cache says `incumbent` already holds.  Returns the
    /// action to take now (phases 1/2 act immediately; phase 3 arms a
    /// timer).
    pub fn on_clash(
        &mut self,
        now: SimTime,
        addr: Addr,
        incumbent_session: SessionId,
        incumbent: Incumbent,
        rng: &mut SimRng,
    ) -> ClashAction {
        // Sample only on the path that consumes randomness, so the
        // refactor to a pure step function leaves every seeded
        // simulation's RNG stream untouched.
        let third_party_delay = match incumbent {
            Incumbent::Cached => {
                let d = exponential_delay(rng, self.policy.d1, self.policy.d2, self.policy.rtt);
                debug_assert!(
                    d >= self.policy.d1 && d <= self.policy.d2,
                    "third-party delay outside [D1, D2]"
                );
                d
            }
            Incumbent::Ours { .. } => SimDuration::ZERO,
        };
        let armed_before = self.state.pending_count();
        let (next, mut actions) = clash_step(
            &self.policy,
            &self.state,
            &ClashEvent::Clash {
                now,
                addr,
                incumbent_session,
                incumbent,
                third_party_delay,
            },
        );
        self.state = next;
        debug_assert_eq!(actions.len(), 1, "a clash maps to exactly one action");
        let action = actions.pop().unwrap_or(ClashAction::DefendOwn {
            session: incumbent_session,
        });
        match &action {
            ClashAction::DefendOwn { .. } => {
                self.telemetry.inc(self.metrics.defend_own);
                self.telemetry.record(
                    now.as_nanos(),
                    Severity::Info,
                    "clash",
                    "defend_own",
                    [("addr", u64::from(addr.0)), NO_ARG, NO_ARG],
                );
            }
            ClashAction::ModifyOwn { .. } => {
                self.telemetry.inc(self.metrics.modify_own);
                self.telemetry.record(
                    now.as_nanos(),
                    Severity::Warn,
                    "clash",
                    "modify_own",
                    [("addr", u64::from(addr.0)), NO_ARG, NO_ARG],
                );
            }
            ClashAction::ThirdPartyArmed { fire_at, .. } => {
                // Count (and sample the delay of) only fresh arms: a
                // duplicated clash re-reports the existing timer.
                if self.state.pending_count() > armed_before {
                    self.telemetry.inc(self.metrics.armed);
                    let delay_ms = fire_at.saturating_since(now).as_nanos() / 1_000_000;
                    self.telemetry.observe(self.metrics.delay_ms, delay_ms);
                    self.telemetry.record(
                        now.as_nanos(),
                        Severity::Info,
                        "defend",
                        "third_party_armed",
                        [("addr", u64::from(addr.0)), ("delay_ms", delay_ms), NO_ARG],
                    );
                }
            }
            ClashAction::DefendThirdParty { .. } => {}
        }
        action
    }

    /// Note that an announcement for `session` was heard (the originator
    /// defended, or another third party beat us to it): suppress any
    /// pending defence of that session.
    pub fn on_announcement_seen(&mut self, session: SessionId) {
        let (next, _) = clash_step(
            &self.policy,
            &self.state,
            &ClashEvent::AnnouncementSeen { session },
        );
        self.state = next;
    }

    /// Note that the clash on `addr` was resolved another way (the new
    /// session moved): cancel defences armed for that address.
    pub fn on_clash_resolved(&mut self, addr: Addr) {
        let (next, _) = clash_step(
            &self.policy,
            &self.state,
            &ClashEvent::ClashResolved { addr },
        );
        self.state = next;
    }

    /// Advance time: fire any expired third-party defences.
    pub fn poll(&mut self, now: SimTime) -> Vec<ClashAction> {
        let (next, actions) = clash_step(&self.policy, &self.state, &ClashEvent::Poll { now });
        self.state = next;
        for action in &actions {
            if let ClashAction::DefendThirdParty { session } = action {
                self.telemetry.inc(self.metrics.fired);
                self.telemetry.record(
                    now.as_nanos(),
                    Severity::Info,
                    "defend",
                    "third_party_fired",
                    [
                        ("site", u64::from(session.site)),
                        ("seq", u64::from(session.seq)),
                        NO_ARG,
                    ],
                );
            }
        }
        actions
    }

    /// Number of armed third-party defences.
    pub fn pending_count(&self) -> usize {
        self.state.pending_count()
    }

    /// Earliest pending defence expiry, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.state.next_deadline()
    }

    /// The pure protocol state (for instrumentation and the checker).
    pub fn state(&self) -> &ClashState {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(site: u32, seq: u32) -> SessionId {
        SessionId { site, seq }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn phase1_long_standing_defends() {
        let mut r = ClashResponder::new(ClashPolicy::default());
        let mut rng = SimRng::new(1);
        let action = r.on_clash(
            t(1000),
            Addr(7),
            sid(1, 1),
            Incumbent::Ours {
                announced_at: t(0),
                wins_tiebreak: true,
            },
            &mut rng,
        );
        assert_eq!(action, ClashAction::DefendOwn { session: sid(1, 1) });
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn phase2_recent_announcer_yields() {
        let mut r = ClashResponder::new(ClashPolicy::default());
        let mut rng = SimRng::new(2);
        let action = r.on_clash(
            t(105),
            Addr(7),
            sid(1, 1),
            Incumbent::Ours {
                announced_at: t(100),
                wins_tiebreak: true,
            },
            &mut rng,
        );
        assert_eq!(
            action,
            ClashAction::ModifyOwn {
                session: sid(1, 1),
                old_addr: Addr(7)
            }
        );
    }

    #[test]
    fn phase2_window_boundary() {
        let policy = ClashPolicy {
            recent_window: SimDuration::from_secs(10),
            ..Default::default()
        };
        let mut r = ClashResponder::new(policy);
        let mut rng = SimRng::new(3);
        // Exactly at the window edge: still "recent".
        let a = r.on_clash(
            t(110),
            Addr(1),
            sid(2, 1),
            Incumbent::Ours {
                announced_at: t(100),
                wins_tiebreak: true,
            },
            &mut rng,
        );
        assert!(matches!(a, ClashAction::ModifyOwn { .. }));
        // Just past it: defends.
        let b = r.on_clash(
            t(111),
            Addr(1),
            sid(2, 1),
            Incumbent::Ours {
                announced_at: t(100),
                wins_tiebreak: true,
            },
            &mut rng,
        );
        assert!(matches!(b, ClashAction::DefendOwn { .. }));
    }

    #[test]
    fn phase3_arms_timer_within_window() {
        let policy = ClashPolicy::default();
        let d1 = policy.d1;
        let d2 = policy.d2;
        let mut r = ClashResponder::new(policy);
        let mut rng = SimRng::new(4);
        let action = r.on_clash(t(50), Addr(9), sid(3, 2), Incumbent::Cached, &mut rng);
        match action {
            ClashAction::ThirdPartyArmed { session, fire_at } => {
                assert_eq!(session, sid(3, 2));
                assert!(fire_at >= t(50) + d1);
                assert!(fire_at <= t(50) + d2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.pending_count(), 1);
    }

    #[test]
    fn phase3_fires_after_deadline() {
        let mut r = ClashResponder::new(ClashPolicy::default());
        let mut rng = SimRng::new(5);
        r.on_clash(t(0), Addr(9), sid(3, 2), Incumbent::Cached, &mut rng);
        let deadline = r.next_deadline().unwrap();
        assert!(r.poll(deadline - SimDuration::from_nanos(1)).is_empty());
        let fired = r.poll(deadline);
        assert_eq!(
            fired,
            vec![ClashAction::DefendThirdParty { session: sid(3, 2) }]
        );
        assert_eq!(r.pending_count(), 0);
        // Idempotent.
        assert!(r.poll(deadline + SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn phase3_suppressed_by_originator() {
        let mut r = ClashResponder::new(ClashPolicy::default());
        let mut rng = SimRng::new(6);
        r.on_clash(t(0), Addr(9), sid(3, 2), Incumbent::Cached, &mut rng);
        r.on_announcement_seen(sid(3, 2));
        assert_eq!(r.pending_count(), 0);
        assert!(r.poll(t(100)).is_empty());
    }

    #[test]
    fn phase3_suppressed_by_resolution() {
        let mut r = ClashResponder::new(ClashPolicy::default());
        let mut rng = SimRng::new(7);
        r.on_clash(t(0), Addr(9), sid(3, 2), Incumbent::Cached, &mut rng);
        // The new session moved to a different address.
        r.on_clash_resolved(Addr(9));
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn multiple_pending_fire_independently() {
        let mut r = ClashResponder::new(ClashPolicy::default());
        let mut rng = SimRng::new(8);
        r.on_clash(t(0), Addr(1), sid(1, 1), Incumbent::Cached, &mut rng);
        r.on_clash(t(0), Addr(2), sid(2, 1), Incumbent::Cached, &mut rng);
        r.on_clash(t(0), Addr(3), sid(3, 1), Incumbent::Cached, &mut rng);
        assert_eq!(r.pending_count(), 3);
        r.on_announcement_seen(sid(2, 1));
        assert_eq!(r.pending_count(), 2);
        let fired = r.poll(t(100));
        assert_eq!(fired.len(), 2);
    }

    #[test]
    fn duplicate_clash_does_not_double_arm() {
        // A duplicated clash announcement must re-report the existing
        // timer, not arm a second defence (two timers would mean two
        // authoritative third-party responses for one clash).
        let mut r = ClashResponder::new(ClashPolicy::default());
        let mut rng = SimRng::new(21);
        let a = r.on_clash(t(0), Addr(9), sid(3, 2), Incumbent::Cached, &mut rng);
        let b = r.on_clash(t(1), Addr(9), sid(3, 2), Incumbent::Cached, &mut rng);
        assert_eq!(r.pending_count(), 1);
        let (fa, fb) = match (a, b) {
            (
                ClashAction::ThirdPartyArmed { fire_at: fa, .. },
                ClashAction::ThirdPartyArmed { fire_at: fb, .. },
            ) => (fa, fb),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(fa, fb, "re-arm must keep the original timer");
        let fired = r.poll(t(100));
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn step_is_pure() {
        let policy = ClashPolicy::default();
        let state = ClashState::new();
        let ev = ClashEvent::Clash {
            now: t(5),
            addr: Addr(1),
            incumbent_session: sid(1, 1),
            incumbent: Incumbent::Cached,
            third_party_delay: SimDuration::from_secs(2),
        };
        let (s1, a1) = clash_step(&policy, &state, &ev);
        let (s2, a2) = clash_step(&policy, &state, &ev);
        assert_eq!(s1, s2);
        assert_eq!(a1, a2);
        assert_eq!(state.pending_count(), 0, "input state untouched");
        assert_eq!(s1.next_deadline(), Some(t(7)));
    }

    #[test]
    fn poll_fires_in_deadline_order() {
        let policy = ClashPolicy::default();
        let mut state = ClashState::new();
        for (secs, site) in [(9u64, 1u32), (3, 2), (6, 3)] {
            let (next, _) = clash_step(
                &policy,
                &state,
                &ClashEvent::Clash {
                    now: t(0),
                    addr: Addr(site),
                    incumbent_session: sid(site, 1),
                    incumbent: Incumbent::Cached,
                    third_party_delay: SimDuration::from_secs(secs),
                },
            );
            state = next;
        }
        let (_, fired) = clash_step(&policy, &state, &ClashEvent::Poll { now: t(100) });
        let order: Vec<u32> = fired
            .iter()
            .map(|a| match a {
                ClashAction::DefendThirdParty { session } => session.site,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn responder_telemetry_counts_decisions() {
        let mut r = ClashResponder::with_telemetry(ClashPolicy::default(), Telemetry::new(3, 99));
        let mut rng = SimRng::new(22);
        r.on_clash(
            t(1000),
            Addr(7),
            sid(1, 1),
            Incumbent::Ours {
                announced_at: t(0),
                wins_tiebreak: true,
            },
            &mut rng,
        );
        r.on_clash(t(1000), Addr(8), sid(2, 1), Incumbent::Cached, &mut rng);
        // Duplicate clash: re-reports the timer, must not double count.
        r.on_clash(t(1001), Addr(8), sid(2, 1), Incumbent::Cached, &mut rng);
        let fired = r.poll(t(2000));
        assert_eq!(fired.len(), 1);
        let m = &r.telemetry().metrics;
        assert_eq!(m.counter_by_name("clash.defend_own"), 1);
        assert_eq!(m.counter_by_name("clash.third_party_armed"), 1);
        assert_eq!(m.counter_by_name("clash.third_party_fired"), 1);
        let snap = r.telemetry().snapshot_json();
        assert!(snap.contains("clash.defence_delay_ms"), "{snap}");
        assert!(r.telemetry().recorder().len() >= 3, "trace events recorded");
    }

    #[test]
    fn responder_telemetry_survives_swap() {
        // set_telemetry re-registers idempotently: counts accumulated
        // before a restart keep counting after.
        let mut r = ClashResponder::with_telemetry(ClashPolicy::default(), Telemetry::new(0, 1));
        let mut rng = SimRng::new(23);
        r.on_clash(t(0), Addr(9), sid(3, 2), Incumbent::Cached, &mut rng);
        let carried = r.take_telemetry();
        let mut r2 = ClashResponder::new(ClashPolicy::default());
        r2.set_telemetry(carried);
        r2.on_clash(t(5), Addr(4), sid(4, 1), Incumbent::Cached, &mut rng);
        assert_eq!(
            r2.telemetry()
                .metrics
                .counter_by_name("clash.third_party_armed"),
            2
        );
    }

    #[test]
    fn exponential_delays_are_suppression_friendly() {
        // Among 1000 third parties arming for the same clash, the
        // earliest deadline should precede the great majority: most
        // responders choose late slots (the suppression property).
        let policy = ClashPolicy::default();
        let mut rng = SimRng::new(9);
        let mut deadlines: Vec<SimTime> = Vec::new();
        for i in 0..1000 {
            let mut r = ClashResponder::new(policy.clone());
            r.on_clash(t(0), Addr(9), sid(i, 1), Incumbent::Cached, &mut rng);
            deadlines.push(r.next_deadline().unwrap());
        }
        let min = *deadlines.iter().min().unwrap();
        // Count how many fall within one RTT of the earliest.
        let near = deadlines
            .iter()
            .filter(|&&d| d.saturating_since(min) <= policy.rtt)
            .count();
        assert!(
            near < 100,
            "{near} responders within one RTT of the earliest"
        );
    }
}
