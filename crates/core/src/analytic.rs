//! Closed-form models from the paper.
//!
//! * [`birthday_clash_probability`]: the clash probability of pure random allocation
//!   (Figure 4) — "the well known 'birthday problem'".
//! * [`eq1_no_clash_probability`]: Equation 1 — the probability of no clash in one IPRMA
//!   partition when `i` allocations are invisible due to announcement
//!   delay and loss, and the derived Figure 6 curves.
//! * [`section_2_3`]: the paper's worked operating-point numbers
//!   (effective delay, invisible-session fraction, concurrent-session
//!   capacity).

/// Probability of at least one clash after `k` uniformly random
/// allocations from a space of `n` addresses (allocations may repeat —
/// the allocator does not even avoid its own choices, matching Figure 4).
pub fn birthday_clash_probability(n: u64, k: u64) -> f64 {
    assert!(n > 0, "empty space");
    if k > n {
        return 1.0;
    }
    // P(no clash) = prod_{j=0}^{k-1} (1 - j/n); log-space for stability.
    let mut log_p: f64 = 0.0;
    for j in 0..k {
        let term = 1.0 - j as f64 / n as f64;
        if term <= 0.0 {
            return 1.0;
        }
        log_p += term.ln();
    }
    1.0 - log_p.exp()
}

/// Number of random allocations from a space of `n` at which the clash
/// probability first reaches `p` (exact scan of the birthday curve).
pub fn birthday_allocations_at_probability(n: u64, p: f64) -> u64 {
    assert!((0.0..1.0).contains(&p), "probability out of range");
    let mut log_no_clash: f64 = 0.0;
    for k in 1..=n + 1 {
        let term = 1.0 - (k - 1) as f64 / n as f64;
        if term <= 0.0 {
            return k;
        }
        log_no_clash += term.ln();
        if 1.0 - log_no_clash.exp() >= p {
            return k;
        }
    }
    n + 1
}

/// Equation 1: probability of **no** clash occurring within the mean
/// lifetime of a session, with `n` addresses in the partition, `m`
/// sessions allocated and `i` of them invisible:
///
/// ```text
/// p_m = ((n - m) / (n + i - m))^m
/// ```
///
/// Each of the `m` allocations chooses uniformly among the `n - m + i`
/// addresses it *believes* free, of which `i` are actually taken.
pub fn eq1_no_clash_probability(n: f64, m: f64, i: f64) -> f64 {
    assert!(n > 0.0, "empty partition");
    if m <= 0.0 {
        return 1.0;
    }
    if m >= n {
        return 0.0;
    }
    let c = (n - m) / (n + i - m);
    c.powf(m)
}

/// Figure 6: the number of sessions `m` that can be allocated in a
/// partition of `n` addresses before the clash probability (over a mean
/// session lifetime) reaches 0.5, when the invisible count is
/// `i = invisible_fraction · m`.
///
/// Solved by bisection on `m` (the probability is monotone decreasing in
/// `m` for fixed `n` and proportional `i`).
pub fn eq1_allocations_at_half(n: f64, invisible_fraction: f64) -> f64 {
    assert!(n >= 2.0, "partition too small");
    let clash = |m: f64| 1.0 - eq1_no_clash_probability(n, m, invisible_fraction * m);
    // Bracket: clash(0)=0; clash(n-epsilon)→1.
    let mut lo = 0.0f64;
    let mut hi = n - 1e-9;
    if clash(hi) < 0.5 {
        return hi;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if clash(mid) < 0.5 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The paper's Section 2.3 worked numbers.
pub mod section_2_3 {
    /// Mean effective end-to-end announcement delay in seconds:
    /// `(1-loss)·delay + loss·repeat_interval` — "(0.98*0.2)+(0.02*600) =
    /// 12 seconds" with the paper's rounding.
    pub fn effective_delay_secs(delay_s: f64, loss: f64, repeat_interval_s: f64) -> f64 {
        (1.0 - loss) * delay_s + loss * repeat_interval_s
    }

    /// Fraction of currently-advertised sessions invisible at a random
    /// site: effective delay divided by mean advertisement duration
    /// ("approximately 0.1% of sessions currently advertised are not
    /// visible at any time" with delay 12 s, duration 4 h).
    pub fn invisible_fraction(effective_delay_s: f64, advertised_duration_s: f64) -> f64 {
        effective_delay_s / advertised_duration_s
    }

    /// Total concurrent sessions across `partitions` equal partitions of
    /// a space of `total_addresses`, each filled to its Figure-6 0.5
    /// clash-probability point with invisible fraction `i_frac`.
    ///
    /// The paper: "With an address space of 65536 addresses partitioned
    /// into 8 equal regions … approximately 16496 concurrent sessions".
    pub fn concurrent_sessions(total_addresses: f64, partitions: f64, i_frac: f64) -> f64 {
        let per = super::eq1_allocations_at_half(total_addresses / partitions, i_frac);
        per * partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn birthday_basics() {
        assert_eq!(birthday_clash_probability(100, 0), 0.0);
        assert_eq!(birthday_clash_probability(100, 1), 0.0);
        // Two picks from two addresses clash with probability 1/2.
        assert!((birthday_clash_probability(2, 2) - 0.5).abs() < 1e-12);
        // k > n pigeonholes.
        assert_eq!(birthday_clash_probability(10, 11), 1.0);
    }

    #[test]
    fn birthday_classic_23_people() {
        // 23 people, 365 days: ~50.7%.
        let p = birthday_clash_probability(365, 23);
        assert!((p - 0.507).abs() < 0.001, "p = {p}");
    }

    #[test]
    fn birthday_figure4_space_10000() {
        // Figure 4: from 10 000 addresses the 50% point is near
        // sqrt(2 ln 2 · n) ≈ 118 allocations.
        let k = birthday_allocations_at_probability(10_000, 0.5);
        assert!((115..=122).contains(&k), "50% at {k}");
        // And by ~400 allocations a clash is almost certain (the figure's
        // x-axis ends at 400 with probability ≈ 1).
        let p400 = birthday_clash_probability(10_000, 400);
        assert!(p400 > 0.99, "p(400) = {p400}");
    }

    #[test]
    fn birthday_monotone_in_k() {
        let mut prev = 0.0;
        for k in 0..200 {
            let p = birthday_clash_probability(1_000, k);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn eq1_perfect_visibility_never_clashes() {
        // i = 0: every allocation sees the truth, no clash is possible.
        for m in [1.0, 10.0, 100.0, 900.0] {
            assert_eq!(eq1_no_clash_probability(1_000.0, m, 0.0), 1.0);
        }
    }

    #[test]
    fn eq1_monotone_in_invisibility() {
        let n = 10_000.0;
        let m = 5_000.0;
        let p0 = eq1_no_clash_probability(n, m, 1.0);
        let p1 = eq1_no_clash_probability(n, m, 10.0);
        let p2 = eq1_no_clash_probability(n, m, 100.0);
        assert!(p0 > p1 && p1 > p2, "{p0} {p1} {p2}");
    }

    #[test]
    fn eq1_paper_anchor_16496() {
        // "With an address space of 65536 addresses partitioned into 8
        // equal regions … approximately 16496 concurrent sessions … before
        // the probability of a clash exceeds 0.5" at i = 0.001m.
        let total = section_2_3::concurrent_sessions(65_536.0, 8.0, 0.001);
        assert!(
            (total - 16_496.0).abs() < 350.0,
            "concurrent sessions {total} (paper: ~16496)"
        );
    }

    #[test]
    fn eq1_figure6_shape() {
        // Packing is near-linear for small partitions and degrades as the
        // partition grows; smaller invisible fractions always pack better.
        for &i_frac in &[0.01, 0.001, 0.0001, 0.00001] {
            let m_small = eq1_allocations_at_half(100.0, i_frac);
            assert!(
                m_small > 10.0,
                "i={i_frac}: small partition packs {m_small}"
            );
        }
        let tight = eq1_allocations_at_half(100_000.0, 0.00001);
        let loose = eq1_allocations_at_half(100_000.0, 0.01);
        assert!(tight > loose * 5.0, "tight {tight} vs loose {loose}");
        // Fractional occupancy falls with n for fixed i-fraction.
        let f_small = eq1_allocations_at_half(1_000.0, 0.001) / 1_000.0;
        let f_large = eq1_allocations_at_half(1_000_000.0, 0.001) / 1_000_000.0;
        assert!(f_small > f_large, "{f_small} vs {f_large}");
    }

    #[test]
    fn eq1_bounds() {
        // Result is always within (0, n).
        for n in [10.0, 1_000.0, 1e6] {
            for i in [0.01, 0.0001] {
                let m = eq1_allocations_at_half(n, i);
                assert!(m > 0.0 && m < n, "n={n} i={i} m={m}");
            }
        }
    }

    #[test]
    fn section_2_3_numbers() {
        let eff = section_2_3::effective_delay_secs(0.2, 0.02, 600.0);
        assert!((eff - 12.196).abs() < 0.01, "effective delay {eff}");
        // 12 s over a 4-hour advertisement: ~0.08%, the paper's "0.1%".
        let inv = section_2_3::invisible_fraction(eff, 4.0 * 3600.0);
        assert!((0.0005..0.0015).contains(&inv), "invisible fraction {inv}");
        // Fast 5 s repeat gives ~0.3 s.
        let fast = section_2_3::effective_delay_secs(0.2, 0.02, 5.0);
        assert!((fast - 0.296).abs() < 0.01, "fast repeat {fast}");
    }

    #[test]
    fn figure6_67_percent_anchor() {
        // The paper picks 67% occupancy "from figure 6 as approximately
        // the proportion of the address space that can be allocated for a
        // band of 10000 addresses before propagation delay and loss alone
        // increase the clash probability to 0.5" (at the i=0.00001m
        // curve's operating conditions ~ i=0.00005m).
        let m = eq1_allocations_at_half(10_000.0, 0.00005);
        let frac = m / 10_000.0;
        assert!(
            (0.55..0.85).contains(&frac),
            "occupancy anchor {frac} (paper: ~0.67)"
        );
    }
}
