//! Multicast address spaces.
//!
//! Allocation algorithms work over an abstract index space `0..size`;
//! this module maps those indices onto real IPv4 multicast addresses.
//! The paper's deployment target is the IANA range used by sdr for
//! dynamically allocated sessions — 224.2.128.0–224.2.255.255, 32 768
//! addresses — while the full IPv4 multicast space is 2²⁸ ≈ 270 million.

use std::fmt;
use std::net::Ipv4Addr;

/// A contiguous range of IPv4 multicast addresses used as an allocation
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrSpace {
    /// First address of the range.
    base: Ipv4Addr,
    /// Number of addresses.
    size: u32,
}

/// An allocated address: an index into an [`AddrSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u32);

impl AddrSpace {
    /// The sdr dynamic range: 224.2.128.0/17 upper half, 32 768 addresses.
    /// (The paper: "the current size of the IANA range for
    /// dynamically-allocated addresses" is 65 536; sdr used the upper
    /// half for dynamic sessions.)
    pub fn sdr_dynamic() -> AddrSpace {
        AddrSpace::new(Ipv4Addr::new(224, 2, 128, 0), 32_768)
    }

    /// The 65 536-address IANA dynamic range 224.2.128.0–224.2.255.255
    /// plus 224.2.0.0–224.2.127.255, as analysed in Section 2.3.
    pub fn iana_dynamic() -> AddrSpace {
        AddrSpace::new(Ipv4Addr::new(224, 2, 0, 0), 65_536)
    }

    /// An abstract space of `size` addresses rooted at 224.2.128.0 —
    /// what the simulations use when only the size matters.
    pub fn abstract_space(size: u32) -> AddrSpace {
        AddrSpace::new(Ipv4Addr::new(224, 2, 128, 0), size)
    }

    /// Create a space; panics if the range is empty, not multicast, or
    /// overruns 239.255.255.255.
    pub fn new(base: Ipv4Addr, size: u32) -> AddrSpace {
        assert!(size > 0, "empty address space");
        assert!(base.is_multicast(), "{base} is not a multicast address");
        let last = u32::from(base) as u64 + size as u64 - 1;
        assert!(
            last <= u32::from(Ipv4Addr::new(239, 255, 255, 255)) as u64,
            "range overruns the multicast space"
        );
        AddrSpace { base, size }
    }

    /// Number of addresses.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// First address.
    pub fn base(&self) -> Ipv4Addr {
        self.base
    }

    /// The concrete IPv4 address for an index.  Panics if out of range.
    pub fn ip(&self, addr: Addr) -> Ipv4Addr {
        assert!(
            addr.0 < self.size,
            "address index {} out of space {}",
            addr.0,
            self.size
        );
        Ipv4Addr::from(u32::from(self.base) + addr.0)
    }

    /// The index for a concrete IPv4 address, if it falls in the range.
    pub fn index_of(&self, ip: Ipv4Addr) -> Option<Addr> {
        let off = u32::from(ip).checked_sub(u32::from(self.base))?;
        (off < self.size).then_some(Addr(off))
    }

    /// Whether the index is valid for this space.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 < self.size
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdr_range() {
        let s = AddrSpace::sdr_dynamic();
        assert_eq!(s.size(), 32_768);
        assert_eq!(s.ip(Addr(0)), Ipv4Addr::new(224, 2, 128, 0));
        assert_eq!(s.ip(Addr(32_767)), Ipv4Addr::new(224, 2, 255, 255));
    }

    #[test]
    fn iana_range() {
        let s = AddrSpace::iana_dynamic();
        assert_eq!(s.size(), 65_536);
        assert_eq!(s.ip(Addr(65_535)), Ipv4Addr::new(224, 2, 255, 255));
    }

    #[test]
    fn index_roundtrip() {
        let s = AddrSpace::abstract_space(1000);
        for i in [0u32, 1, 500, 999] {
            let ip = s.ip(Addr(i));
            assert_eq!(s.index_of(ip), Some(Addr(i)));
        }
        assert_eq!(s.index_of(Ipv4Addr::new(224, 1, 0, 0)), None);
        assert_eq!(s.index_of(Ipv4Addr::new(224, 2, 131, 233)), None); // 1001st
    }

    #[test]
    #[should_panic(expected = "out of space")]
    fn out_of_range_ip_panics() {
        AddrSpace::abstract_space(10).ip(Addr(10));
    }

    #[test]
    #[should_panic(expected = "not a multicast")]
    fn non_multicast_base_rejected() {
        AddrSpace::new(Ipv4Addr::new(10, 0, 0, 0), 10);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn overrun_rejected() {
        AddrSpace::new(Ipv4Addr::new(239, 255, 255, 0), 512);
    }

    #[test]
    fn contains() {
        let s = AddrSpace::abstract_space(5);
        assert!(s.contains(Addr(4)));
        assert!(!s.contains(Addr(5)));
    }
}
