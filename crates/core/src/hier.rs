//! Hierarchical prefix allocation — the paper's Section 4.1 proposal,
//! concretised.
//!
//! The paper concludes that a flat announce/listen allocator tops out
//! around 10 000 addresses and sketches a two-level remedy:
//!
//! > "At the higher level, a dynamic 'prefix' allocation scheme should
//! > be used based on locality … the prefixes themselves need to be
//! > dynamically allocated too, based on how many addresses are in use
//! > from the prefix by the lower level address allocation scheme …
//! > the timescales used to allocate prefixes can be much longer than
//! > those used for individual addresses … and so achieve low
//! > probabilities of prefix collision."
//!
//! This module implements that sketch (the paper gives no mechanism
//! details — our concrete choices are documented inline):
//!
//! * a [`PrefixRegistry`] — the top level.  Domains (countries, ASes)
//!   claim contiguous address blocks.  Claims are globally visible —
//!   the paper proposes flooding them over BGP exchanges, whose
//!   reliability over prefix-allocation timescales lets us model the
//!   registry as a consistent shared structure;
//! * a [`HierarchicalAllocator`] — the lower level.  Each domain's
//!   sites allocate individual addresses *inside their domain's
//!   prefixes* with the usual informed-random rule, growing the
//!   domain's claim when occupancy crosses a threshold.  Global-scope
//!   sessions draw from a dedicated shared prefix.
//!
//! Because prefixes are disjoint, the TTL-asymmetry clash class — a
//! global allocation landing on an invisible local session — is
//! eliminated by construction; what remains is intra-domain contention,
//! where announcements are local, fast and near-lossless.

use std::sync::{Arc, Mutex, PoisonError};

use sdalloc_sim::SimRng;

use crate::addr::{Addr, AddrSpace};
use crate::alloc::{pick_free_in_range, Allocator};
use crate::view::View;

/// A contiguous block of the address space claimed by one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prefix {
    /// First address (inclusive).
    pub lo: u32,
    /// One past the last address.
    pub hi: u32,
}

impl Prefix {
    /// Number of addresses in the block.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }

    /// Whether `addr` falls inside the block.
    pub fn contains(&self, addr: Addr) -> bool {
        (self.lo..self.hi).contains(&addr.0)
    }
}

/// The id of the pseudo-domain holding the global-scope prefix.
pub const GLOBAL_DOMAIN: u32 = u32::MAX;

/// The top-level registry of prefix claims.
///
/// ```
/// use sdalloc_core::PrefixRegistry;
/// let mut reg = PrefixRegistry::new(1024);
/// let a = reg.claim(1, 100).unwrap(); // rounds up to 128
/// let b = reg.claim(2, 100).unwrap();
/// assert_eq!(a.len(), 128);
/// assert!(a.hi <= b.lo || b.hi <= a.lo); // never overlap
/// ```
///
/// Deterministic first-fit with power-of-two sizing: claims never
/// overlap, and a domain's demand doubling produces a predictable
/// footprint.  In deployment this state is replicated by flooding
/// (BGP-style); here it is a shared structure because the paper's
/// argument is exactly that prefix-level churn is slow enough for that
/// replication to be effectively consistent.
#[derive(Debug)]
pub struct PrefixRegistry {
    space: u32,
    /// (domain, prefix), sorted by prefix.lo.
    // lint:bounded: disjoint power-of-two blocks of a fixed address space — at most space/min_claim entries, prefix-level churn is the paper's slow path
    claims: Vec<(u32, Prefix)>,
}

impl PrefixRegistry {
    /// An empty registry over a space of `space` addresses.
    pub fn new(space: u32) -> Self {
        assert!(space > 0, "empty space");
        PrefixRegistry {
            space,
            claims: Vec::new(),
        }
    }

    /// Size of the managed space.
    pub fn space(&self) -> u32 {
        self.space
    }

    /// All claims, ordered by address.
    pub fn claims(&self) -> &[(u32, Prefix)] {
        &self.claims
    }

    /// The prefixes currently held by `domain`.
    // lint:allow(hot-alloc): returns the domain's claimed-prefix snapshot; a domain holds a handful of prefixes
    pub fn prefixes_of(&self, domain: u32) -> Vec<Prefix> {
        self.claims
            .iter()
            .filter(|(d, _)| *d == domain)
            .map(|(_, p)| *p)
            .collect()
    }

    /// Claim a new block of at least `want` addresses for `domain`
    /// (rounded up to a power of two).  First-fit over the free gaps;
    /// `None` when no gap is large enough.
    pub fn claim(&mut self, domain: u32, want: u32) -> Option<Prefix> {
        let size = want.max(1).next_power_of_two().min(self.space);
        let mut cursor = 0u32;
        let mut insert_at = self.claims.len();
        for (i, (_, p)) in self.claims.iter().enumerate() {
            if p.lo - cursor >= size {
                insert_at = i;
                break;
            }
            cursor = p.hi;
        }
        if insert_at == self.claims.len() && self.space - cursor < size {
            return None;
        }
        let prefix = Prefix {
            lo: cursor,
            hi: cursor + size,
        };
        self.claims.insert(insert_at, (domain, prefix));
        debug_assert!(prefix.hi <= self.space, "claim overruns the space");
        debug_assert!(self.is_consistent(), "claims overlap after insert");
        Some(prefix)
    }

    /// Release a block.
    pub fn release(&mut self, domain: u32, prefix: Prefix) {
        self.claims.retain(|(d, p)| !(*d == domain && *p == prefix));
    }

    /// Fraction of the space under claim.
    pub fn utilization(&self) -> f64 {
        let claimed: u64 = self.claims.iter().map(|(_, p)| p.len() as u64).sum();
        claimed as f64 / self.space as f64
    }

    /// Sanity: no two claims overlap.
    // lint:allow(panic-reach): windows(2) chunks have exactly two elements
    pub fn is_consistent(&self) -> bool {
        self.claims.windows(2).all(|w| w[0].1.hi <= w[1].1.lo)
    }
}

/// The lower-level allocator for one domain.
///
/// Sessions with TTL below `global_ttl` are allocated from the domain's
/// own prefixes; sessions at or above it from the shared global prefix.
/// When a level's free share drops below `grow_at`, the allocator
/// claims another block of the same total size (capacity doubling).
pub struct HierarchicalAllocator {
    registry: Arc<Mutex<PrefixRegistry>>,
    domain: u32,
    /// TTL at and above which sessions are "global".
    global_ttl: u8,
    /// Grow when free slots fall below this fraction of capacity.
    grow_at: f64,
    /// Initial claim size for a domain with no prefix yet.
    initial_claim: u32,
}

impl HierarchicalAllocator {
    /// Create the allocator for `domain` over a shared registry.
    pub fn new(registry: Arc<Mutex<PrefixRegistry>>, domain: u32) -> Self {
        assert_ne!(domain, GLOBAL_DOMAIN, "domain id reserved");
        HierarchicalAllocator {
            registry,
            domain,
            global_ttl: 127,
            grow_at: 0.25,
            initial_claim: 16,
        }
    }

    /// Override the global-TTL boundary (default 127).
    pub fn with_global_ttl(mut self, ttl: u8) -> Self {
        self.global_ttl = ttl;
        self
    }

    fn level_domain(&self, ttl: u8) -> u32 {
        if ttl >= self.global_ttl {
            GLOBAL_DOMAIN
        } else {
            self.domain
        }
    }

    /// Allocate inside the given domain's prefixes, growing on demand.
    // lint:allow(hot-alloc): the shuffle needs an owned order over the domain's few prefixes
    fn allocate_in_domain(&self, level: u32, view: &View<'_>, rng: &mut SimRng) -> Option<Addr> {
        let mut registry = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        let used = view.occupied();
        loop {
            let prefixes = registry.prefixes_of(level);
            let capacity: u32 = prefixes.iter().map(Prefix::len).sum();
            let used_here = u32::try_from(
                used.iter()
                    .filter(|a| prefixes.iter().any(|p| p.contains(**a)))
                    .count(),
            )
            .unwrap_or(u32::MAX);
            let free = capacity.saturating_sub(used_here);
            if capacity == 0 || (free as f64) < self.grow_at * capacity as f64 {
                // Claim more space (doubling), then retry once more.
                let want = capacity.max(self.initial_claim);
                registry.claim(level, want)?;
                continue;
            }
            // Pick a random prefix weighted by free room, then a free
            // address within it.
            let mut order: Vec<Prefix> = prefixes.clone();
            // Deterministic shuffle so hot prefixes don't always win.
            rng.shuffle(&mut order);
            for p in order {
                if let Some(addr) = pick_free_in_range(p.lo, p.hi, &used, rng) {
                    return Some(addr);
                }
            }
            // All claimed blocks are full despite the occupancy check
            // (remote sessions in view can sit inside our blocks after
            // renumbering); grow once, then give up if that fails.
            let want = capacity.max(self.initial_claim);
            registry.claim(level, want)?;
        }
    }
}

impl Allocator for HierarchicalAllocator {
    fn name(&self) -> String {
        format!("Hier(domain {})", self.domain)
    }

    fn allocate(
        &self,
        space: &AddrSpace,
        ttl: u8,
        view: &View<'_>,
        rng: &mut SimRng,
    ) -> Option<Addr> {
        {
            let registry = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
            assert_eq!(
                registry.space(),
                space.size(),
                "allocator and registry must manage the same space"
            );
        }
        let level = self.level_domain(ttl);
        self.allocate_in_domain(level, view, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::VisibleSession;

    #[test]
    fn prefix_claims_are_disjoint_first_fit() {
        let mut reg = PrefixRegistry::new(1_024);
        let a = reg.claim(1, 100).unwrap(); // rounds to 128
        let b = reg.claim(2, 60).unwrap(); // rounds to 64
        let c = reg.claim(1, 10).unwrap(); // rounds to 16
        assert_eq!(a, Prefix { lo: 0, hi: 128 });
        assert_eq!(b, Prefix { lo: 128, hi: 192 });
        assert_eq!(c, Prefix { lo: 192, hi: 208 });
        assert!(reg.is_consistent());
        assert!((reg.utilization() - 208.0 / 1_024.0).abs() < 1e-12);
    }

    #[test]
    fn release_reopens_gap() {
        let mut reg = PrefixRegistry::new(256);
        let a = reg.claim(1, 64).unwrap();
        let _b = reg.claim(2, 64).unwrap();
        reg.release(1, a);
        // The freed gap is reused first-fit.
        let c = reg.claim(3, 32).unwrap();
        assert_eq!(c.lo, 0);
        assert!(reg.is_consistent());
    }

    #[test]
    fn claim_fails_when_space_exhausted() {
        let mut reg = PrefixRegistry::new(128);
        assert!(reg.claim(1, 128).is_some());
        assert!(reg.claim(2, 1).is_none());
    }

    #[test]
    fn fragmented_space_requires_fitting_gap() {
        let mut reg = PrefixRegistry::new(256);
        let _a = reg.claim(1, 64).unwrap(); // [0,64)
        let b = reg.claim(2, 64).unwrap(); // [64,128)
        let _c = reg.claim(3, 64).unwrap(); // [128,192)
        reg.release(2, b); // hole of 64 at [64,128)
        assert!(reg.claim(4, 128).is_none(), "no contiguous 128 left");
        assert_eq!(reg.claim(4, 64), Some(Prefix { lo: 64, hi: 128 }));
    }

    #[test]
    fn hierarchical_allocates_inside_own_prefix() {
        let reg = Arc::new(Mutex::new(PrefixRegistry::new(4_096)));
        let alloc = HierarchicalAllocator::new(Arc::clone(&reg), 7);
        let space = AddrSpace::abstract_space(4_096);
        let mut rng = SimRng::new(1);
        let view = View::empty();
        let addr = alloc.allocate(&space, 15, &view, &mut rng).unwrap();
        let prefixes = reg.lock().unwrap().prefixes_of(7);
        assert!(prefixes.iter().any(|p| p.contains(addr)));
        // A global session goes to the global prefix instead.
        let g = alloc.allocate(&space, 191, &view, &mut rng).unwrap();
        let global = reg.lock().unwrap().prefixes_of(GLOBAL_DOMAIN);
        assert!(global.iter().any(|p| p.contains(g)));
        assert!(!prefixes.iter().any(|p| p.contains(g)));
    }

    #[test]
    fn two_domains_never_collide_locally() {
        // Even with completely disjoint views (no cross-domain
        // visibility at all), local sessions in two domains can never
        // share an address: the prefixes are disjoint.
        let reg = Arc::new(Mutex::new(PrefixRegistry::new(8_192)));
        let a = HierarchicalAllocator::new(Arc::clone(&reg), 1);
        let b = HierarchicalAllocator::new(Arc::clone(&reg), 2);
        let space = AddrSpace::abstract_space(8_192);
        let mut rng = SimRng::new(2);
        let mut seen_a = Vec::new();
        let mut seen_b = Vec::new();
        for i in 0..200 {
            // Each domain only sees its own sessions.
            let va: Vec<VisibleSession> =
                seen_a.iter().map(|&x| VisibleSession::new(x, 15)).collect();
            let vb: Vec<VisibleSession> =
                seen_b.iter().map(|&x| VisibleSession::new(x, 15)).collect();
            let xa = a
                .allocate(&space, 15, &View::new(&va), &mut rng)
                .unwrap_or_else(|| panic!("domain 1 full at {i}"));
            let xb = b
                .allocate(&space, 15, &View::new(&vb), &mut rng)
                .unwrap_or_else(|| panic!("domain 2 full at {i}"));
            seen_a.push(xa);
            seen_b.push(xb);
        }
        let sa: std::collections::HashSet<_> = seen_a.iter().collect();
        let sb: std::collections::HashSet<_> = seen_b.iter().collect();
        assert_eq!(sa.len(), 200, "domain 1 self-collided");
        assert_eq!(sb.len(), 200, "domain 2 self-collided");
        assert!(
            sa.is_disjoint(&sb),
            "cross-domain collision despite prefixes"
        );
        assert!(reg.lock().unwrap().is_consistent());
    }

    #[test]
    fn grows_on_demand() {
        let reg = Arc::new(Mutex::new(PrefixRegistry::new(2_048)));
        let alloc = HierarchicalAllocator::new(Arc::clone(&reg), 3);
        let space = AddrSpace::abstract_space(2_048);
        let mut rng = SimRng::new(3);
        let mut mine: Vec<Addr> = Vec::new();
        for _ in 0..300 {
            let view_data: Vec<VisibleSession> =
                mine.iter().map(|&a| VisibleSession::new(a, 15)).collect();
            let view = View::new(&view_data);
            mine.push(
                alloc
                    .allocate(&space, 15, &view, &mut rng)
                    .expect("space remains"),
            );
        }
        let capacity: u32 = reg
            .lock()
            .unwrap()
            .prefixes_of(3)
            .iter()
            .map(Prefix::len)
            .sum();
        assert!(capacity >= 300, "claimed capacity {capacity} too small");
        assert!(
            capacity <= 1_024,
            "claimed capacity {capacity} wastefully large"
        );
    }

    #[test]
    fn exhaustion_returns_none() {
        let reg = Arc::new(Mutex::new(PrefixRegistry::new(32)));
        let alloc = HierarchicalAllocator::new(Arc::clone(&reg), 1);
        let space = AddrSpace::abstract_space(32);
        let mut rng = SimRng::new(4);
        let mut mine = Vec::new();
        loop {
            let view_data: Vec<VisibleSession> =
                mine.iter().map(|&a| VisibleSession::new(a, 15)).collect();
            let view = View::new(&view_data);
            match alloc.allocate(&space, 15, &view, &mut rng) {
                Some(a) => mine.push(a),
                None => break,
            }
            assert!(mine.len() <= 32, "allocated beyond the space");
        }
        assert!(mine.len() >= 20, "gave up too early: {}", mine.len());
    }
}
