//! The TTL → partition mapping of Deterministic Adaptive IPRMA
//! (Section 2.4.1, Figure 11).
//!
//! The paper derives, from the Mbone's hop-count statistics, that "the
//! number of TTL values, n, allocated to a partition with lowest TTL t,
//! with a margin of safety m, is given by … n = (32/255)·(t/m), with n
//! rounded up to the nearest integer.  Choosing a margin of safety of 2
//! gives 55 partitions" — single-TTL partitions at low TTLs (where a
//! one-hop difference matters), widening toward high TTLs (where
//! thresholds are sparse relative to hop counts).
//!
//! TTL 0 is a legal packet TTL ("an IP header field called Time To Live
//! is set to a value between zero and 255"), so the map starts at t = 0;
//! that also reproduces the paper's count of 55 exactly.

/// One partition: an inclusive range of TTL values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TtlPartition {
    /// Lowest TTL in the partition.
    pub lo: u8,
    /// Highest TTL in the partition (inclusive).
    pub hi: u8,
}

impl TtlPartition {
    /// Whether the partition covers `ttl`.
    pub fn contains(&self, ttl: u8) -> bool {
        (self.lo..=self.hi).contains(&ttl)
    }
}

/// The full TTL→partition map for a given margin of safety.
///
/// ```
/// use sdalloc_core::PartitionMap;
/// let map = PartitionMap::paper_default();
/// assert_eq!(map.len(), 55);                  // the paper's count
/// assert_eq!(map.partition(1).hi, 1);         // low TTLs get their own partition
/// assert!(map.partition(200).hi - map.partition(200).lo > 5); // high TTLs share
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    margin: u32,
    partitions: Vec<TtlPartition>,
    /// partition index per TTL value, for O(1) lookup.
    by_ttl: [u16; 256],
}

impl PartitionMap {
    /// Build the map for margin-of-safety `margin` (the paper uses 2).
    // lint:allow(panic-reach): by_ttl is a [_; 256] table indexed by a TTL clamped to 0..=255; windows(2) chunks have exactly two elements
    pub fn new(margin: u32) -> PartitionMap {
        assert!(margin >= 1, "margin must be at least 1");
        let mut partitions = Vec::new();
        let mut by_ttl = [0u16; 256];
        let mut t: u32 = 0;
        while t <= 255 {
            // n = ceil(32·t / (255·m)), at least one TTL per partition.
            let n = ((32 * t).div_ceil(255 * margin)).max(1);
            let hi = (t + n - 1).min(255);
            // At most 256 single-TTL partitions exist, so the index
            // always fits; `t` and `hi` are clamped to 0..=255 above.
            let idx = u16::try_from(partitions.len())
                .unwrap_or_else(|_| unreachable!("more than 65535 partitions"));
            let (lo8, hi8) = match (u8::try_from(t), u8::try_from(hi)) {
                (Ok(lo), Ok(hi)) => (lo, hi),
                _ => unreachable!("TTL bounds escape 0..=255"),
            };
            partitions.push(TtlPartition { lo: lo8, hi: hi8 });
            for v in t..=hi {
                by_ttl[v as usize] = idx;
            }
            t = hi + 1;
        }
        debug_assert!(
            partitions.windows(2).all(|w| w[1].lo == w[0].hi + 1),
            "partitions must be contiguous and non-overlapping"
        );
        PartitionMap {
            margin,
            partitions,
            by_ttl,
        }
    }

    /// The paper's configuration: margin 2, 55 partitions.
    pub fn paper_default() -> PartitionMap {
        PartitionMap::new(2)
    }

    /// The margin of safety this map was built with.
    pub fn margin(&self) -> u32 {
        self.margin
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether the map is empty (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// The partitions in ascending TTL order.
    pub fn partitions(&self) -> &[TtlPartition] {
        &self.partitions
    }

    /// Index of the partition covering `ttl`.
    // lint:allow(panic-reach): by_ttl is a [_; 256] table and the index is a u8
    pub fn partition_of(&self, ttl: u8) -> usize {
        self.by_ttl[ttl as usize] as usize
    }

    /// The partition covering `ttl`.
    // lint:allow(panic-reach): by_ttl entries are valid partition indices by construction in new()
    pub fn partition(&self, ttl: u8) -> TtlPartition {
        self.partitions[self.partition_of(ttl)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_two_gives_55_partitions() {
        let map = PartitionMap::paper_default();
        assert_eq!(map.len(), 55, "the paper's Figure 11 count");
    }

    #[test]
    fn partitions_tile_the_ttl_range() {
        for margin in [1u32, 2, 3, 4] {
            let map = PartitionMap::new(margin);
            let mut expected_lo = 0u32;
            for p in map.partitions() {
                assert_eq!(p.lo as u32, expected_lo, "gap before {p:?} (m={margin})");
                assert!(p.hi >= p.lo);
                expected_lo = p.hi as u32 + 1;
            }
            assert_eq!(expected_lo, 256, "range not fully covered (m={margin})");
        }
    }

    #[test]
    fn lookup_matches_ranges() {
        let map = PartitionMap::paper_default();
        for ttl in 0..=255u8 {
            let p = map.partition(ttl);
            assert!(p.contains(ttl), "ttl {ttl} not in its own partition {p:?}");
        }
    }

    #[test]
    fn low_ttls_get_single_value_partitions() {
        // "Allocating one partition per TTL value is necessary at very
        // low TTLs" — for m=2 every TTL below 16 is alone.
        let map = PartitionMap::paper_default();
        for ttl in 0..16u8 {
            let p = map.partition(ttl);
            assert_eq!((p.lo, p.hi), (ttl, ttl), "ttl {ttl}");
        }
    }

    #[test]
    fn high_ttl_partitions_are_wide_but_bounded() {
        // The top partition must span fewer TTL values than the DVMRP
        // infinite metric of 32 divided by... the guideline: width less
        // than ~32/margin at the top.
        let map = PartitionMap::paper_default();
        let top = *map.partitions().last().unwrap();
        let width = top.hi as u32 - top.lo as u32 + 1;
        assert!(width <= 16, "top width {width} exceeds 32/margin");
        assert!(width >= 8, "top width {width} suspiciously narrow");
        assert_eq!(top.hi, 255);
    }

    #[test]
    fn canonical_ttls_in_distinct_partitions() {
        // The ds distributions' TTL values must land in distinct
        // partitions for the adaptive scheme to separate them.
        let map = PartitionMap::paper_default();
        let ttls = [1u8, 15, 31, 47, 63, 127, 191];
        let parts: std::collections::HashSet<usize> =
            ttls.iter().map(|&t| map.partition_of(t)).collect();
        assert_eq!(parts.len(), ttls.len());
    }

    #[test]
    fn larger_margin_fewer_wait_more_partitions() {
        // Larger margin → narrower partitions → more of them.
        let m1 = PartitionMap::new(1).len();
        let m2 = PartitionMap::new(2).len();
        let m3 = PartitionMap::new(3).len();
        assert!(m1 < m2 && m2 < m3, "{m1} {m2} {m3}");
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn zero_margin_rejected() {
        PartitionMap::new(0);
    }
}
