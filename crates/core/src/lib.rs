//! # sdalloc-core — scalable multicast address allocation
//!
//! The paper's primary contribution: fully distributed multicast address
//! allocation driven by session-directory announcements, under TTL
//! scoping.  This crate implements every algorithm the paper describes
//! or evaluates:
//!
//! | Algorithm | Type | Paper section |
//! |---|---|---|
//! | `R` ([`RandomAllocator`]) | pure random baseline | §2.2 |
//! | `IR` ([`InformedRandomAllocator`]) | avoid visible addresses | §2.2 |
//! | `IPR 3/7-band` ([`StaticIpr`]) | static TTL partitions | §2.1–2.2 |
//! | `AIPR-1..4` ([`AdaptiveIpr`]) | deterministic adaptive partitions | §2.4–2.6 |
//! | `AIPR-H` ([`AdaptiveIpr::hybrid`]) | IPR-7/adaptive hybrid | §2.6 |
//!
//! plus the closed-form models ([`analytic`]: Figures 4 and 6, the §2.3
//! operating point), the TTL→partition map of Figure 11
//! ([`partition_map`]), the three-phase clash detection/recovery
//! protocol of Section 3 ([`clash`]), and the Section 4.1 hierarchical
//! prefix-allocation proposal, concretised ([`hier`]).
//!
//! Allocators are pure functions of the *view* — the `(address, TTL)`
//! pairs visible in the local session directory cache — so the same code
//! runs inside the Mbone-scale simulations (`sdalloc-experiments`) and a
//! real SAP announcer (`sdalloc-sap`).
//!
//! ```
//! use sdalloc_core::{AddrSpace, AdaptiveIpr, Allocator, View, VisibleSession, Addr};
//! use sdalloc_sim::SimRng;
//!
//! let space = AddrSpace::sdr_dynamic();
//! let alloc = AdaptiveIpr::aipr3();
//! let cache = [VisibleSession::new(Addr(32_000), 127)];
//! let view = View::new(&cache);
//! let mut rng = SimRng::new(42);
//! let addr = alloc.allocate(&space, 127, &view, &mut rng).expect("space not full");
//! assert_ne!(addr, Addr(32_000));
//! println!("allocated {}", space.ip(addr));
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod addr;
pub mod alloc;
pub mod analytic;
pub mod clash;
pub mod hier;
pub mod partition_map;
pub mod static_ipr;
pub mod view;

pub use adaptive::{AdaptiveIpr, BandMap};
pub use addr::{Addr, AddrSpace};
pub use alloc::{AllocOutcome, Allocator, InformedRandomAllocator, RandomAllocator};
pub use clash::{
    clash_step, ClashAction, ClashEvent, ClashPolicy, ClashResponder, ClashState, Incumbent,
    PendingDefense, SessionId,
};
pub use hier::{HierarchicalAllocator, Prefix, PrefixRegistry, GLOBAL_DOMAIN};
pub use partition_map::{PartitionMap, TtlPartition};
pub use static_ipr::StaticIpr;
pub use view::{View, VisibleSession};
