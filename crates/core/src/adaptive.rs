//! Adaptive and Deterministic Adaptive IPRMA (Sections 2.4–2.6).
//!
//! Static partitioning wastes space (empty bands) and breaks when TTL
//! boundary policies change, so the paper makes partitions adapt to the
//! sessions actually visible.  The deterministic variant (Figure 8)
//! removes the clash modes of naive adaptation with one rule:
//!
//! > "every site bases the position and size of the partition
//! > corresponding to TTL x only on session announcements for sessions
//! > with a TTL greater than or equal to x"
//!
//! plus a partition layout "initially clustered at the end of the space
//! corresponding to maximum TTL", growing downward.  Because a site
//! allocating at TTL x can (given a reliable announcement protocol) see
//! every session it could clash with at TTL ≥ x, all sites agree on the
//! geometry of the partitions that matter, and only announcement delay
//! can cause clashes.
//!
//! The simulated variants of Figure 12 are reproduced as configurations
//! of one allocator:
//!
//! * **AIPR-1/2/3/4** — rectangular bands over the 55-partition TTL map,
//!   with 20/50/60/70 % of the space evenly reserved for inter-band
//!   gaps and a 67 % target band occupancy; initial band size one
//!   address.
//! * **AIPR-H** — a hybrid with IPR-7's bands, initially spread over the
//!   top 50 % of the space; a band holds its initial position until the
//!   bands above push it down, and shrinks when under-occupied.
//!
//! The paper leaves some mechanics unstated; our concrete choices are
//! documented inline and exercised by the ablation benches.

use sdalloc_sim::SimRng;

use crate::addr::{Addr, AddrSpace};
use crate::alloc::{pick_free_in_range, Allocator};
use crate::partition_map::PartitionMap;
use crate::static_ipr::StaticIpr;
use crate::view::View;

/// How TTLs map to adaptive bands.
#[derive(Debug, Clone)]
pub enum BandMap {
    /// The Deterministic Adaptive IPRMA map (Figure 11), e.g. 55
    /// partitions at margin 2.  Boxed: the map carries a 256-entry
    /// lookup table.
    Partition(Box<PartitionMap>),
    /// Fixed separators as in static IPR (used by the AIPR-H hybrid).
    Static(StaticIpr),
}

impl BandMap {
    /// Number of bands.
    pub fn len(&self) -> usize {
        match self {
            BandMap::Partition(m) => m.len(),
            BandMap::Static(s) => s.bands(),
        }
    }

    /// Whether there are no bands (never true for valid maps).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Band index for a TTL (bands ordered by ascending TTL).
    pub fn band_of(&self, ttl: u8) -> usize {
        match self {
            BandMap::Partition(m) => m.partition_of(ttl),
            BandMap::Static(s) => s.band_of(ttl),
        }
    }
}

/// Adaptive informed-partitioned-random allocator.
#[derive(Debug, Clone)]
pub struct AdaptiveIpr {
    bands: BandMap,
    /// Fraction of the address space reserved for inter-band gaps.
    gap_fraction: f64,
    /// Target band occupancy (the paper picks 67 % from Figure 6).
    occupancy: f64,
    /// `Some(span)` for the hybrid: bands start spread over the top
    /// `span` fraction of the space instead of clustered at the top.
    hybrid_span: Option<f64>,
    label: String,
}

impl AdaptiveIpr {
    /// General constructor.
    pub fn new(
        bands: BandMap,
        gap_fraction: f64,
        occupancy: f64,
        hybrid_span: Option<f64>,
        label: impl Into<String>,
    ) -> AdaptiveIpr {
        assert!(
            (0.0..1.0).contains(&gap_fraction),
            "gap fraction out of range"
        );
        assert!(
            occupancy > 0.0 && occupancy <= 1.0,
            "occupancy out of range"
        );
        if let Some(s) = hybrid_span {
            assert!(s > 0.0 && s <= 1.0, "hybrid span out of range");
        }
        AdaptiveIpr {
            bands,
            gap_fraction,
            occupancy,
            hybrid_span,
            label: label.into(),
        }
    }

    /// AIPR-1: 55-partition map, 20 % gaps, 67 % occupancy.
    pub fn aipr1() -> AdaptiveIpr {
        Self::paper_variant(0.20, "AIPR-1 (20% gap)")
    }

    /// AIPR-2: 50 % gaps.
    pub fn aipr2() -> AdaptiveIpr {
        Self::paper_variant(0.50, "AIPR-2 (50% gap)")
    }

    /// AIPR-3: 60 % gaps (the best performer in Figure 12).
    pub fn aipr3() -> AdaptiveIpr {
        Self::paper_variant(0.60, "AIPR-3 (60% gap)")
    }

    /// AIPR-4: 70 % gaps.
    pub fn aipr4() -> AdaptiveIpr {
        Self::paper_variant(0.70, "AIPR-4 (70% gap)")
    }

    fn paper_variant(gap: f64, label: &str) -> AdaptiveIpr {
        AdaptiveIpr::new(
            BandMap::Partition(Box::new(PartitionMap::paper_default())),
            gap,
            0.67,
            None,
            label,
        )
    }

    /// AIPR-H: the IPR-7 hybrid — 7 bands over the top 50 % of the
    /// space, 20 % gaps, 67 % occupancy.
    pub fn hybrid() -> AdaptiveIpr {
        AdaptiveIpr::new(
            BandMap::Static(StaticIpr::seven_band()),
            0.20,
            0.67,
            Some(0.5),
            "AIPR-H (hybrid)",
        )
    }

    /// The band map in use.
    pub fn band_map(&self) -> &BandMap {
        &self.bands
    }

    /// Gap fraction.
    pub fn gap_fraction(&self) -> f64 {
        self.gap_fraction
    }

    /// Compute the address range `[lo, hi)` of the band for `ttl`, from
    /// the sessions visible at this site.
    ///
    /// The deterministic rule: geometry depends only on visible sessions
    /// with TTL ≥ `ttl`.  Bands are stacked downward from the top of the
    /// space (highest TTL first); each band's width is
    /// `max(1, ceil(count / occupancy))` so it always retains spare
    /// capacity, and bands are separated by an even share of the gap
    /// budget.  Returns `None` if the stack runs off the bottom of the
    /// space — the adaptive scheme's expression of "full".
    // lint:allow(panic-reach): counts is sized to the band count k and indexed by band_of() results below k
    // lint:allow(hot-alloc): the count scratch is k elements (seven bands), sized by configuration, not by session load
    pub fn band_range(&self, space: &AddrSpace, ttl: u8, view: &View<'_>) -> Option<(u32, u32)> {
        let n = space.size() as i64;
        let k = self.bands.len();
        let target = self.bands.band_of(ttl);

        // Session counts per band, restricted to TTL >= requested.
        let mut counts = vec![0u32; k];
        for s in view.with_ttl_at_least(ttl) {
            counts[self.bands.band_of(s.ttl)] += 1;
        }

        // "X% of the address space is evenly allocated to inter-band
        // spacing": the budget is split into GAP_CUSHIONS space-
        // proportional cushions, one below each *occupied* band.  Three
        // constraints shape this rule:
        //  1. gaps must scale with the space — they absorb the
        //     *inter-site variance* in visible low-TTL session counts,
        //     which grows with the total population (otherwise capacity
        //     plateaus at a constant regardless of space size);
        //  2. the gap below any band above the target may depend only on
        //     that band's own ≥-its-TTL session count, which every
        //     requester sees identically — a per-request denominator
        //     would let two requesters stack the shared upper bands
        //     differently and re-introduce the cross-band clash the
        //     deterministic scheme exists to prevent;
        //  3. empty bands must cost only their one-address initial
        //     allocation, or 55 bands starve small spaces.
        // GAP_CUSHIONS = 8 matches the number of frequently-used TTL
        // classes on the Mbone (§2.4.1 / Figure 10) — the bands that can
        // actually be occupied simultaneously in practice.
        const GAP_CUSHIONS: f64 = 8.0;
        let gap = ((self.gap_fraction * n as f64) / GAP_CUSHIONS).floor() as i64;
        let width = |c: u32| -> i64 { ((c as f64 / self.occupancy).ceil() as i64).max(1) };
        let gap_after = |c: u32| -> i64 {
            if c == 0 {
                0
            } else {
                gap
            }
        };

        // Initial top positions: clustered at the very top, or (hybrid)
        // spread over the top `span` fraction.
        let initial_hi = |band: usize| -> i64 {
            match self.hybrid_span {
                None => n,
                Some(span) => {
                    let reach = (span * n as f64) as i64; // top span of the space
                    let step = reach / k as i64;
                    n - (k - 1 - band) as i64 * step
                }
            }
        };

        // Stack from the highest band down to the target band.
        let mut hi = initial_hi(k - 1);
        for band in (target..k).rev() {
            hi = hi.min(initial_hi(band));
            let w = width(counts[band]);
            let lo = hi - w;
            if band == target {
                if lo < 0 {
                    return None; // ran off the bottom: space exhausted
                }
                debug_assert!(
                    lo <= hi && hi <= n,
                    "band range [{lo},{hi}) escapes the space of {n}"
                );
                return Some((lo as u32, (hi.max(lo)) as u32));
            }
            // Only occupied bands earn breathing room below them.  The
            // hybrid takes no dynamic gaps at all: its spacing is baked
            // into the initial spread positions ("initially positioned …
            // with 20% of the space being used for inter-band gaps"),
            // and a band moves only when the one above pushes into it.
            let dynamic_gaps = self.hybrid_span.is_none();
            hi = if dynamic_gaps {
                lo - gap_after(counts[band])
            } else {
                lo
            };
            if hi <= 0 {
                return None;
            }
        }
        unreachable!("target band is always visited");
    }
}

impl Allocator for AdaptiveIpr {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn allocate(
        &self,
        space: &AddrSpace,
        ttl: u8,
        view: &View<'_>,
        rng: &mut SimRng,
    ) -> Option<Addr> {
        let (lo, hi) = self.band_range(space, ttl, view)?;
        let used = view.occupied();
        if let Some(addr) = pick_free_in_range(lo, hi, &used, rng) {
            return Some(addr);
        }
        // The computed width only accounts for sessions with TTL >= ttl;
        // same-partition sessions placed by sites whose stack sat a few
        // addresses lower can occupy (and exhaust) the computed range.
        // The inter-band cushion below exists precisely to absorb such
        // drift ("partitions can move in response to allocation bursts
        // without colliding"), so extend into it — but never beyond,
        // since past the cushion lies the next band's territory.
        let cushion = ((self.gap_fraction * space.size() as f64) / 8.0).floor() as u32;
        if self.hybrid_span.is_none() && cushion > 1 {
            let floor = lo.saturating_sub(cushion - 1);
            return pick_free_in_range(floor, lo, &used, rng);
        }
        None
    }

    fn partition_range(&self, space: &AddrSpace, ttl: u8, view: &View<'_>) -> (u32, u32) {
        // A stack that ran off the bottom has no band to report; the
        // degradation event then labels the whole space as exhausted.
        self.band_range(space, ttl, view)
            .unwrap_or((0, space.size()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::VisibleSession;

    fn sessions(pairs: &[(u32, u8)]) -> Vec<VisibleSession> {
        pairs
            .iter()
            .map(|&(a, t)| VisibleSession::new(Addr(a), t))
            .collect()
    }

    #[test]
    fn empty_view_bands_cluster_at_top() {
        let a = AdaptiveIpr::aipr1();
        let space = AddrSpace::abstract_space(10_000);
        let view = View::empty();
        // With no sessions every band has width 1; the top TTL's band is
        // at the very top.
        let (lo, hi) = a.band_range(&space, 255, &view).unwrap();
        assert_eq!((lo, hi), (9_999, 10_000));
        // A low-TTL band sits 54 bands + gaps further down but exists.
        let (lo1, hi1) = a.band_range(&space, 1, &view).unwrap();
        assert_eq!(hi1 - lo1, 1);
        assert!(hi1 < lo);
    }

    #[test]
    fn bands_grow_with_session_count() {
        let a = AdaptiveIpr::aipr1();
        let space = AddrSpace::abstract_space(10_000);
        // 100 visible TTL-191 sessions.
        let s: Vec<VisibleSession> = (0..100)
            .map(|i| VisibleSession::new(Addr(9_900 + i), 191))
            .collect();
        let view = View::new(&s);
        let (lo, hi) = a.band_range(&space, 191, &view).unwrap();
        // width = ceil(100/0.67) = 150.
        assert_eq!(hi - lo, 150);
    }

    #[test]
    fn deterministic_rule_ignores_lower_ttls() {
        let a = AdaptiveIpr::aipr1();
        let space = AddrSpace::abstract_space(10_000);
        // Many low-TTL sessions; geometry for TTL 191 must ignore them.
        let mut pairs: Vec<(u32, u8)> = (0..500).map(|i| (i, 1u8)).collect();
        pairs.push((9_999, 191));
        let s = sessions(&pairs);
        let view = View::new(&s);
        let with_low = a.band_range(&space, 191, &view).unwrap();
        let only_high = sessions(&[(9_999, 191)]);
        let view2 = View::new(&only_high);
        let without_low = a.band_range(&space, 191, &view2).unwrap();
        assert_eq!(with_low, without_high_eq(without_low));
        fn without_high_eq(x: (u32, u32)) -> (u32, u32) {
            x
        }
    }

    #[test]
    fn lower_band_pushed_down_by_growth_above() {
        let a = AdaptiveIpr::aipr1();
        let space = AddrSpace::abstract_space(10_000);
        let empty = View::empty();
        let (lo_before, _) = a.band_range(&space, 15, &empty).unwrap();
        // Grow the top bands.
        let s: Vec<VisibleSession> = (0..200)
            .map(|i| VisibleSession::new(Addr(9_000 + i), 191))
            .collect();
        let view = View::new(&s);
        let (lo_after, _) = a.band_range(&space, 15, &view).unwrap();
        assert!(
            lo_after < lo_before,
            "band did not move down: {lo_before} -> {lo_after}"
        );
    }

    #[test]
    fn geometry_agrees_across_sites_for_shared_ttl() {
        // The deterministic property: two sites that see the same set of
        // TTL>=x sessions compute identical geometry for TTL x, no
        // matter what lower-TTL sessions each sees locally.
        let a = AdaptiveIpr::aipr3();
        let space = AddrSpace::abstract_space(5_000);
        let base: Vec<(u32, u8)> = vec![(4_999, 191), (4_990, 127), (4_991, 127)];
        let mut site_a = base.clone();
        site_a.extend((0..50).map(|i| (i, 1u8)));
        let mut site_b = base.clone();
        site_b.extend((100..130).map(|i| (i, 15u8)));
        let sa = sessions(&site_a);
        let sb = sessions(&site_b);
        let ra = a.band_range(&space, 127, &View::new(&sa)).unwrap();
        let rb = a.band_range(&space, 127, &View::new(&sb)).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn allocates_within_band_and_avoids_used() {
        let a = AdaptiveIpr::aipr1();
        let space = AddrSpace::abstract_space(10_000);
        let s = sessions(&[(9_999, 255)]);
        let view = View::new(&s);
        let mut rng = SimRng::new(1);
        let (lo, hi) = a.band_range(&space, 255, &view).unwrap();
        for _ in 0..50 {
            let got = a.allocate(&space, 255, &view, &mut rng).unwrap();
            assert!(got.0 >= lo.saturating_sub(1000) && got.0 < hi);
            assert_ne!(got, Addr(9_999));
        }
    }

    #[test]
    fn space_exhaustion_returns_none() {
        let a = AdaptiveIpr::aipr4(); // 70% gaps: exhausts fastest
        let space = AddrSpace::abstract_space(100);
        // 60 sessions at TTL 1: band width alone exceeds what's left
        // below the 54 bands above it.
        let s: Vec<VisibleSession> = (0..60).map(|i| VisibleSession::new(Addr(i), 1)).collect();
        let view = View::new(&s);
        assert_eq!(a.band_range(&space, 1, &view), None);
    }

    #[test]
    fn hybrid_initial_positions_spread_over_top_half() {
        let h = AdaptiveIpr::hybrid();
        let space = AddrSpace::abstract_space(10_000);
        let view = View::empty();
        // Top band at the very top.
        let (_, hi_top) = h.band_range(&space, 255, &view).unwrap();
        assert_eq!(hi_top, 10_000);
        // Bottom band around the middle of the space, not at the bottom.
        let (lo_bot, hi_bot) = h.band_range(&space, 1, &view).unwrap();
        assert!(
            hi_bot <= 5_800 && lo_bot >= 4_000,
            "bottom band at {lo_bot}..{hi_bot}"
        );
    }

    #[test]
    fn hybrid_band_holds_position_until_pushed() {
        let h = AdaptiveIpr::hybrid();
        let space = AddrSpace::abstract_space(10_000);
        let empty = View::empty();
        let before = h.band_range(&space, 63, &empty).unwrap();
        // A few high-TTL sessions should NOT move the TTL-63 band (bands
        // above have slack before they reach it).
        let s: Vec<VisibleSession> = (0..20)
            .map(|i| VisibleSession::new(Addr(9_000 + i), 191))
            .collect();
        let view = View::new(&s);
        let after = h.band_range(&space, 63, &view).unwrap();
        assert_eq!(before.1, after.1, "band top moved without pressure");
        // Massive growth above must push it down.
        let s2: Vec<VisibleSession> = (0..3_000)
            .map(|i| VisibleSession::new(Addr(i), 191))
            .collect();
        let view2 = View::new(&s2);
        let pushed = h.band_range(&space, 63, &view2).unwrap();
        assert!(
            pushed.1 < before.1,
            "band not pushed: {:?} vs {:?}",
            pushed,
            before
        );
    }

    #[test]
    fn variant_labels() {
        assert_eq!(AdaptiveIpr::aipr1().name(), "AIPR-1 (20% gap)");
        assert_eq!(AdaptiveIpr::aipr2().name(), "AIPR-2 (50% gap)");
        assert_eq!(AdaptiveIpr::aipr3().name(), "AIPR-3 (60% gap)");
        assert_eq!(AdaptiveIpr::aipr4().name(), "AIPR-4 (70% gap)");
        assert_eq!(AdaptiveIpr::hybrid().name(), "AIPR-H (hybrid)");
    }

    #[test]
    fn occupancy_always_leaves_headroom() {
        // width(c) > c for every count: the band always has at least one
        // address beyond its current sessions.
        let a = AdaptiveIpr::aipr1();
        let space = AddrSpace::abstract_space(100_000);
        for count in [1u32, 2, 3, 10, 67, 100, 1000] {
            let s: Vec<VisibleSession> = (0..count)
                .map(|i| VisibleSession::new(Addr(i), 255))
                .collect();
            let view = View::new(&s);
            let (lo, hi) = a.band_range(&space, 255, &view).unwrap();
            assert!(hi - lo > count, "no headroom at count {count}");
        }
    }

    #[test]
    #[should_panic(expected = "gap fraction")]
    fn bad_gap_fraction_rejected() {
        AdaptiveIpr::new(
            BandMap::Static(StaticIpr::seven_band()),
            1.5,
            0.67,
            None,
            "bad",
        );
    }
}
