//! The request–response responder as a pure state machine.
//!
//! Each group member that could answer a multicast request runs one of
//! these: schedule a response at a randomly delayed instant, and cancel
//! it if someone else's response arrives strictly before that instant.
//! The machine is a pure transition function
//!
//! ```text
//! responder_step(state, event) -> (state', outputs)
//! ```
//!
//! with no clock, no RNG and no I/O — the *driver* (the suppression
//! sweep in [`crate::sim`], or the bounded model checker in
//! `cargo xtask model`) samples the delay, orders the events and carries
//! the outputs.  Purity is what makes the protocol explorable: the model
//! checker enumerates every interleaving of deliveries, duplicates and
//! losses over exactly the code the simulation runs.
//!
//! Transition semantics (matching the paper's suppression rules):
//!
//! * a request schedules a response; **duplicate requests are ignored**
//!   in every later state (a responder answers a request at most once);
//! * responses heard while scheduled accumulate the *earliest* arrival
//!   instant; the suppression decision is taken at the deadline:
//!   strictly-earlier arrival ⇒ suppressed, otherwise send.  An arrival
//!   at exactly the send instant cannot stop the transmission (on a
//!   tree, nodes downstream of a zero-delay sender hit equality);
//! * `Responded` and `Suppressed` are terminal.

use sdalloc_sim::SimDuration;

/// The responder's lifecycle for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResponderState {
    /// No request seen yet (or not a group member).
    Idle,
    /// A response is scheduled; `heard` is the earliest instant another
    /// response has arrived so far (if any).
    Scheduled {
        /// When our response will be transmitted.
        send_at: SimDuration,
        /// Earliest arrival of someone else's response, if heard.
        heard: Option<SimDuration>,
    },
    /// We transmitted our response at `sent_at`.
    Responded {
        /// When we transmitted.
        sent_at: SimDuration,
    },
    /// We cancelled: a response arrived at `heard_at`, strictly before
    /// our `scheduled_at`.
    Suppressed {
        /// When we would have sent.
        scheduled_at: SimDuration,
        /// The arrival that silenced us.
        heard_at: SimDuration,
    },
}

/// An input to the responder machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrEvent {
    /// The request arrived; the driver has already added the sampled
    /// response delay, so `send_at` is the absolute send instant.
    Request {
        /// The scheduled transmission instant.
        send_at: SimDuration,
    },
    /// Someone else's response arrived at `at`.
    HearResponse {
        /// Arrival instant.
        at: SimDuration,
    },
    /// Our response timer expired: decide between sending and
    /// suppression.
    Deadline,
}

/// An output of the responder machine, for the driver to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrOutput {
    /// Transmit our response at `at`.
    SendResponse {
        /// Transmission instant.
        at: SimDuration,
    },
}

/// Advance the responder by one event.  Pure: same `(state, event)`
/// always yields the same `(state', outputs)`.
pub fn responder_step(state: ResponderState, event: RrEvent) -> (ResponderState, Vec<RrOutput>) {
    match (state, event) {
        (ResponderState::Idle, RrEvent::Request { send_at }) => (
            ResponderState::Scheduled {
                send_at,
                heard: None,
            },
            Vec::new(),
        ),
        // A response heard before we ever saw the request: nothing to
        // suppress, and SAP-style responders do not adopt other
        // receivers' schedules.
        (ResponderState::Idle, _) => (ResponderState::Idle, Vec::new()),

        (ResponderState::Scheduled { send_at, heard }, RrEvent::HearResponse { at }) => (
            ResponderState::Scheduled {
                send_at,
                heard: Some(match heard {
                    None => at,
                    Some(prev) => prev.min(at),
                }),
            },
            Vec::new(),
        ),
        // Duplicate request while scheduled: keep the original schedule.
        (s @ ResponderState::Scheduled { .. }, RrEvent::Request { .. }) => (s, Vec::new()),
        (ResponderState::Scheduled { send_at, heard }, RrEvent::Deadline) => match heard {
            // Strictly earlier arrival silences us.
            Some(h) if h < send_at => (
                ResponderState::Suppressed {
                    scheduled_at: send_at,
                    heard_at: h,
                },
                Vec::new(),
            ),
            _ => (
                ResponderState::Responded { sent_at: send_at },
                vec![RrOutput::SendResponse { at: send_at }],
            ),
        },

        // Terminal states absorb everything — in particular a duplicated
        // request must NOT re-arm a responder that already answered:
        // that would be a second authoritative response.
        (s @ ResponderState::Responded { .. }, _) => (s, Vec::new()),
        (s @ ResponderState::Suppressed { .. }, _) => (s, Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn request_schedules() {
        let (s, out) = responder_step(ResponderState::Idle, RrEvent::Request { send_at: ms(100) });
        assert_eq!(
            s,
            ResponderState::Scheduled {
                send_at: ms(100),
                heard: None
            }
        );
        assert!(out.is_empty());
    }

    #[test]
    fn deadline_without_interference_sends() {
        let s = ResponderState::Scheduled {
            send_at: ms(100),
            heard: None,
        };
        let (s, out) = responder_step(s, RrEvent::Deadline);
        assert_eq!(s, ResponderState::Responded { sent_at: ms(100) });
        assert_eq!(out, vec![RrOutput::SendResponse { at: ms(100) }]);
    }

    #[test]
    fn earlier_arrival_suppresses() {
        let s = ResponderState::Scheduled {
            send_at: ms(100),
            heard: None,
        };
        let (s, _) = responder_step(s, RrEvent::HearResponse { at: ms(40) });
        let (s, out) = responder_step(s, RrEvent::Deadline);
        assert_eq!(
            s,
            ResponderState::Suppressed {
                scheduled_at: ms(100),
                heard_at: ms(40)
            }
        );
        assert!(out.is_empty());
    }

    #[test]
    fn equal_instant_does_not_suppress() {
        let s = ResponderState::Scheduled {
            send_at: ms(100),
            heard: None,
        };
        let (s, _) = responder_step(s, RrEvent::HearResponse { at: ms(100) });
        let (_, out) = responder_step(s, RrEvent::Deadline);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn earliest_arrival_wins() {
        let s = ResponderState::Scheduled {
            send_at: ms(100),
            heard: None,
        };
        let (s, _) = responder_step(s, RrEvent::HearResponse { at: ms(150) });
        let (s, _) = responder_step(s, RrEvent::HearResponse { at: ms(30) });
        let (s, _) = responder_step(s, RrEvent::HearResponse { at: ms(60) });
        assert_eq!(
            s,
            ResponderState::Scheduled {
                send_at: ms(100),
                heard: Some(ms(30))
            }
        );
    }

    #[test]
    fn duplicate_request_keeps_schedule() {
        let s = ResponderState::Scheduled {
            send_at: ms(100),
            heard: None,
        };
        let (s2, out) = responder_step(s, RrEvent::Request { send_at: ms(5) });
        assert_eq!(s2, s);
        assert!(out.is_empty());
    }

    #[test]
    fn responded_is_terminal_even_for_duplicate_requests() {
        let s = ResponderState::Responded { sent_at: ms(100) };
        for ev in [
            RrEvent::Request { send_at: ms(5) },
            RrEvent::HearResponse { at: ms(1) },
            RrEvent::Deadline,
        ] {
            let (s2, out) = responder_step(s, ev);
            assert_eq!(s2, s);
            assert!(out.is_empty(), "{ev:?} produced output from Responded");
        }
    }

    #[test]
    fn suppressed_is_terminal() {
        let s = ResponderState::Suppressed {
            scheduled_at: ms(100),
            heard_at: ms(40),
        };
        for ev in [
            RrEvent::Request { send_at: ms(5) },
            RrEvent::HearResponse { at: ms(1) },
            RrEvent::Deadline,
        ] {
            let (s2, out) = responder_step(s, ev);
            assert_eq!(s2, s);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn hear_before_request_is_dropped() {
        let (s, out) = responder_step(ResponderState::Idle, RrEvent::HearResponse { at: ms(1) });
        assert_eq!(s, ResponderState::Idle);
        assert!(out.is_empty());
        let (s, out) = responder_step(ResponderState::Idle, RrEvent::Deadline);
        assert_eq!(s, ResponderState::Idle);
        assert!(out.is_empty());
    }
}
