//! # sdalloc-rr — the multicast request–response suppression protocol
//!
//! Section 3 of the paper: when a clash (or any multicast "request")
//! could draw a response from every group member, how should responders
//! randomise their delays so that only a few actually send, without
//! waiting too long for the first one?
//!
//! * [`analytic`] — the bucket-model upper bounds on the expected number
//!   of responders, for uniform (Equation 2, Figure 14) and exponential
//!   (Equations 3–4, Figure 18) delay distributions, in numerically
//!   stable O(d) closed form.
//! * [`sim`] — the full simulation over Doar-style topologies with
//!   source-based or shared-tree routing, distance-proportional delays,
//!   optional queueing jitter, and real suppression (Figures 15, 16, 19).
//!
//! ```
//! use sdalloc_rr::analytic::{expected_responses_uniform, expected_responses_exponential};
//!
//! // 12 800 receivers, a 51.2 s window at 200 ms RTT = 256 buckets:
//! let uniform = expected_responses_uniform(12_800, 256);
//! let exponential = expected_responses_exponential(12_800, 256);
//! assert!(exponential < 3.0 && uniform > exponential);
//! ```

#![warn(missing_docs)]

pub mod analytic;
pub mod responder;
pub mod sim;

pub use analytic::{
    buckets, expected_responses_exponential, expected_responses_uniform, EXPONENTIAL_FLOOR,
};
pub use responder::{responder_step, ResponderState, RrEvent, RrOutput};
pub use sim::{
    run_many, trace_fingerprint, DelayDist, Population, RrAggregate, RrOutcome, RrParams, RrSim,
    RrTrace, TraceEvent, TreeMode,
};
