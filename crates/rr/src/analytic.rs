//! Closed-form upper bounds on the number of responders
//! (Section 3, Equations 2–4; Figures 14 and 18).
//!
//! Model: `n` potential responders each pick one of `d` time buckets of
//! width `R` (the maximum round-trip time).  Everyone in the earliest
//! occupied bucket responds; everyone later is suppressed.  This is an
//! upper bound because it ignores suppression *within* a bucket and
//! round-trips shorter than `R`.
//!
//! The paper derives the expectation as a double sum over (k packets in
//! bucket b) × (no packets earlier).  That double sum telescopes:
//! conditioning on a bucket `b` with mass `a_b` out of `S`, and mass
//! `c_b` strictly after it,
//!
//! ```text
//! E = Σ_b  n · (a_b/S) · ((a_b + c_b)/S)^(n−1)
//! ```
//!
//! (each of the `n` packets contributes `a_b/S · P(the other n−1 avoid
//! the buckets before b)`), giving an O(d) evaluation that is exact and
//! stable for `n` up to millions.  The naive double sum is kept (for
//! small inputs) as a cross-check in the tests.

/// Expected responders with **uniform** bucket choice (Equation 2,
/// Figure 14): `d` buckets of equal probability.
///
/// ```
/// use sdalloc_rr::analytic::expected_responses_uniform;
/// // 12 800 receivers, 64 buckets: far too many duplicates.
/// assert!(expected_responses_uniform(12_800, 64) > 100.0);
/// ```
pub fn expected_responses_uniform(n: u64, d: u64) -> f64 {
    assert!(n >= 1 && d >= 1, "need at least one packet and one bucket");
    // E = (n/d) · Σ_{j=1..d} (j/d)^(n−1), where j = d − b + 1.
    let nf = n as f64;
    let df = d as f64;
    let mut sum = 0.0;
    for j in 1..=d {
        sum += (j as f64 / df).powf(nf - 1.0);
    }
    nf / df * sum
}

/// Expected responders with **exponential** bucket choice (Equations 3–4,
/// Figure 18): bucket `b` (1-based) has probability `2^(b−1) / (2^d − 1)`.
///
/// As `d → ∞` this tends to `1/ln 2 ≈ 1.4427` — "the limit in this case
/// is a mean of 1.442698 responses … the small price we pay for using an
/// exponential".
pub fn expected_responses_exponential(n: u64, d: u64) -> f64 {
    assert!(n >= 1 && d >= 1, "need at least one packet and one bucket");
    let nf = n as f64;
    // Work with ratios a_b/S and (a_b+c_b)/S in log2 space to survive
    // d up to thousands: a_b = 2^(b−1), a_b + c_b = 2^d − 2^(b−1),
    // S = 2^d − 1.
    //   a_b/S        = 2^(b−1−d) · (1/(1−2^(−d)))
    //   (a_b+c_b)/S  = (1 − 2^(b−1−d)) / (1 − 2^(−d))
    let mut sum = 0.0;
    let log2_s_ratio = (-((-(d as f64)).exp2())).ln_1p() / std::f64::consts::LN_2; // log2(1−2^−d)
    for b in 1..=d {
        let e = b as f64 - 1.0 - d as f64; // ≤ −1... ≤ 0
        let log2_a = e - log2_s_ratio;
        let tail = 1.0 - e.exp2(); // 1 − 2^(b−1−d) ∈ (0, 1]
        if tail <= 0.0 {
            continue;
        }
        let log2_ac = tail.log2() - log2_s_ratio;
        let log2_term = log2_a + (nf - 1.0) * log2_ac;
        sum += log2_term.exp2();
    }
    nf * sum
}

/// The asymptotic floor of the exponential scheme: `1/ln 2`.
pub const EXPONENTIAL_FLOOR: f64 = std::f64::consts::LOG2_E; // = 1/ln 2

/// Convert a suppression window `d2 − d1` and RTT `r` (same unit) into a
/// bucket count, as the paper does (`d` buckets of size `R`).  At least
/// one bucket.
pub fn buckets(window: f64, rtt: f64) -> u64 {
    assert!(rtt > 0.0, "rtt must be positive");
    (window / rtt).floor().max(1.0) as u64
}

/// Naive O(n·d) evaluation of Equation 2/4, for cross-checking the
/// closed forms on small inputs.  `bucket_mass[b]` is the (unnormalised)
/// probability mass of bucket `b`.
// lint:allow(panic-reach): suffix has d+1 elements and b stays below d
pub fn expected_responses_naive(n: u64, bucket_mass: &[f64]) -> f64 {
    let s: f64 = bucket_mass.iter().sum();
    let nf = n as f64;
    let mut total = 0.0;
    // Precompute suffix sums: mass strictly after bucket b.
    let d = bucket_mass.len();
    let mut suffix = vec![0.0; d + 1];
    for b in (0..d).rev() {
        suffix[b] = suffix[b + 1] + bucket_mass[b];
    }
    for b in 0..d {
        let p = bucket_mass[b] / s; // this bucket
        let after = suffix[b + 1] / s; // strictly after
                                       // Σ_k k·C(n,k)·p^k·after^(n−k) = n·p·(p+after)^(n−1)
                                       // — but verify by literal summation as the paper writes it:
        let mut eb = 0.0;
        for k in 1..=n {
            let log_c = ln_choose(n, k);
            let term = log_c + (k as f64) * p.ln() + (nf - k as f64) * after.max(1e-300).ln();
            eb += k as f64 * term.exp();
        }
        total += eb;
    }
    total
}

fn ln_choose(n: u64, k: u64) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_bucket_everyone_responds() {
        for n in [1u64, 5, 100] {
            assert!((expected_responses_uniform(n, 1) - n as f64).abs() < 1e-9);
            assert!((expected_responses_exponential(n, 1) - n as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn one_packet_one_response() {
        for d in [1u64, 10, 100, 1000] {
            assert!((expected_responses_uniform(1, d) - 1.0).abs() < 1e-9);
            assert!((expected_responses_exponential(1, d) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_matches_naive() {
        for (n, d) in [(2u64, 2u64), (5, 3), (10, 7), (20, 12)] {
            let closed = expected_responses_uniform(n, d);
            let naive = expected_responses_naive(n, &vec![1.0; d as usize]);
            assert!(
                (closed - naive).abs() < 1e-6,
                "n={n} d={d}: closed {closed} naive {naive}"
            );
        }
    }

    #[test]
    fn exponential_matches_naive() {
        for (n, d) in [(2u64, 2u64), (5, 3), (10, 7), (20, 10)] {
            let closed = expected_responses_exponential(n, d);
            let mass: Vec<f64> = (0..d).map(|b| (2f64).powi(b as i32)).collect();
            let naive = expected_responses_naive(n, &mass);
            assert!(
                (closed - naive).abs() < 1e-6,
                "n={n} d={d}: closed {closed} naive {naive}"
            );
        }
    }

    #[test]
    fn uniform_needs_d_proportional_to_n() {
        // Figure 14's message: with uniform delays, holding d fixed while
        // n grows explodes the response count...
        let small = expected_responses_uniform(100, 64);
        let big = expected_responses_uniform(10_000, 64);
        assert!(big > small * 20.0, "small {small} big {big}");
        // ...and keeping E constant requires d ∝ n.
        let e1 = expected_responses_uniform(1_000, 1_000);
        let e2 = expected_responses_uniform(10_000, 10_000);
        assert!((e1 - e2).abs() / e1 < 0.05, "{e1} vs {e2}");
    }

    #[test]
    fn exponential_nearly_size_independent() {
        // Figure 18's message: E barely moves across two decades of n.
        let d = 40;
        let e200 = expected_responses_exponential(200, d);
        let e25k = expected_responses_exponential(25_600, d);
        assert!(e200 < 4.0, "e200 = {e200}");
        assert!(e25k < 8.0, "e25k = {e25k}");
        assert!(e25k / e200 < 3.0, "ratio {}", e25k / e200);
    }

    #[test]
    fn exponential_floor_is_1_4427() {
        // For large d with big n the expectation approaches 1/ln 2 ≈
        // 1.442695 — the paper quotes "a mean of 1.442698 responses".
        let e = expected_responses_exponential(1_000_000, 400);
        assert!(
            (e - EXPONENTIAL_FLOOR).abs() < 0.02,
            "e = {e}, floor = {EXPONENTIAL_FLOOR}"
        );
        #[allow(clippy::approx_constant)] // the paper's quoted digits
        const PAPER_LIMIT: f64 = 1.442695;
        assert!((EXPONENTIAL_FLOOR - PAPER_LIMIT).abs() < 1e-5);
    }

    #[test]
    fn uniform_monotone_in_d() {
        let mut prev = f64::INFINITY;
        for d in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            let e = expected_responses_uniform(1_000, d);
            assert!(e <= prev + 1e-9, "not monotone at d={d}");
            prev = e;
        }
    }

    #[test]
    fn large_inputs_are_finite_and_sane() {
        // Figure 14/18 corner: n = 51 200, D2 = 204.8 s, R = 200 ms →
        // d = 1024 buckets.
        let u = expected_responses_uniform(51_200, 1024);
        assert!(u.is_finite() && u >= 1.0, "uniform {u}");
        let e = expected_responses_exponential(51_200, 1024);
        assert!(e.is_finite() && (1.0..3.0).contains(&e), "exponential {e}");
    }

    #[test]
    fn buckets_helper() {
        assert_eq!(buckets(204_800.0, 200.0), 1024);
        assert_eq!(buckets(100.0, 200.0), 1);
        assert_eq!(buckets(200.0, 200.0), 1);
        assert_eq!(buckets(400.0, 200.0), 2);
    }

    #[test]
    fn figure14_shape_grid() {
        // Spot-check the Figure 14 surface: more sites → more responses;
        // longer D2 → fewer.
        let d2_values = [800.0, 3_200.0, 12_800.0, 51_200.0, 204_800.0];
        let sites = [200u64, 1_600, 12_800, 51_200];
        for w in d2_values.windows(2) {
            let e_short = expected_responses_uniform(1_600, buckets(w[0], 200.0));
            let e_long = expected_responses_uniform(1_600, buckets(w[1], 200.0));
            assert!(
                e_long < e_short,
                "D2 {} → {e_short}, {} → {e_long}",
                w[0],
                w[1]
            );
        }
        for w in sites.windows(2) {
            let e_small = expected_responses_uniform(w[0], 256);
            let e_big = expected_responses_uniform(w[1], 256);
            assert!(e_big > e_small);
        }
    }
}
