//! Simulation of the multicast request–response protocol
//! (Section 3; Figures 15, 16, 18, 19).
//!
//! One node multicasts a *request*; every other group member schedules a
//! *response* after a random delay and cancels it if it hears someone
//! else's response first.  The simulation measures two things the
//! analytic bucket model cannot capture — real topology-dependent
//! round-trip times and natural suppression within a "bucket":
//!
//! * the number of responses actually sent, and
//! * the delay until the requester receives the first response.
//!
//! Configurations match the paper's: Doar-style topologies, delivery
//! over source-based shortest-path trees or a shared tree, link delay
//! proportional to distance with optional per-hop random queueing
//! jitter, and uniform or exponential response-delay distributions.

use sdalloc_sim::suppression::{exponential_delay, uniform_delay};
use sdalloc_sim::{SimDuration, SimRng};
use sdalloc_telemetry::{CounterId, HistogramId, Severity, Telemetry, NO_ARG};
use sdalloc_topology::routing::{SharedTree, SourceTree};
use sdalloc_topology::{NodeId, Topology};

use crate::responder::{responder_step, ResponderState, RrEvent, RrOutput};

/// How responses (and the request) are routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeMode {
    /// Source-based shortest-path trees (DVMRP / dense-mode PIM).
    SourceTrees,
    /// A single core-based shared tree (CBT / sparse-mode PIM).
    SharedTree,
}

/// Response-delay distribution over `[d1, d2]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayDist {
    /// Uniform over the window (Figures 14–16).
    Uniform,
    /// Exponentially weighted toward the end of the window (Figure 18).
    Exponential,
    /// Ranked (Section 3.1: "we can arbitrarily rank the sites using any
    /// additional information that we have"): member `r` of `n` delays
    /// `d1 + (r + u)·(d2−d1)/n` with `u ~ U[0,1)`, so the lowest-ranked
    /// live member responds almost alone and almost immediately.
    Ranked,
}

/// Who is allowed to respond, and when (Section 3.1's first lever:
/// "initially only allowing the sites that are actually announcing
/// sessions to respond … Sites that are not session announcers can
/// always be allowed to respond later by setting their D1 value to the
/// value of D2 of the announcing sites").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Population {
    /// Every member responds in `[d1, d2]`.
    All,
    /// The given fraction of members are announcers responding in
    /// `[d1, d2]`; everyone else waits in `[d2, 2·d2 − d1]`.
    AnnouncersFirst {
        /// Fraction of members that are session announcers.
        fraction: f64,
    },
}

/// Parameters of one request–response run.
#[derive(Debug, Clone)]
pub struct RrParams {
    /// Routing mode.
    pub tree: TreeMode,
    /// Response-delay distribution.
    pub dist: DelayDist,
    /// Earliest response delay (D1).
    pub d1: SimDuration,
    /// Latest response delay (D2).
    pub d2: SimDuration,
    /// RTT scale: the exponential distribution's bucket width.
    pub rtt: SimDuration,
    /// Per-hop uniform queueing jitter bound; `None` for
    /// delay = distance exactly.
    pub jitter_per_hop: Option<SimDuration>,
    /// Responder population policy.
    pub population: Population,
}

impl RrParams {
    /// The paper's base configuration (Figure 15 A): source trees,
    /// uniform delay, delay ≈ distance, 200 ms RTT scale.
    pub fn figure15a(d2: SimDuration) -> RrParams {
        RrParams {
            tree: TreeMode::SourceTrees,
            dist: DelayDist::Uniform,
            d1: SimDuration::ZERO,
            d2,
            rtt: SimDuration::from_millis(200),
            jitter_per_hop: None,
            population: Population::All,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RrOutcome {
    /// Number of responses actually transmitted.
    pub responses: usize,
    /// Delay from the request until the first response reaches the
    /// requester; `None` if nobody responded (empty group).
    pub first_response: Option<SimDuration>,
}

/// One observable event in a request–response exchange, in the order the
/// suppression sweep processes it.  The trace is the protocol's complete
/// deterministic history: two implementations are equivalent iff they
/// produce identical traces for identical seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `node` transmitted its response at `at` (since the request).
    ResponseSent {
        /// Responding member.
        node: u32,
        /// Send instant.
        at: SimDuration,
    },
    /// `node` cancelled its scheduled response: another response reached
    /// it at `heard_at`, strictly before its own `scheduled_at`.
    Suppressed {
        /// Suppressed member.
        node: u32,
        /// When it would have sent.
        scheduled_at: SimDuration,
        /// When the suppressing response arrived.
        heard_at: SimDuration,
    },
    /// A transmitted response reached the requester at `at`.
    ResponseAtRequester {
        /// The responder it came from.
        from: u32,
        /// Arrival instant.
        at: SimDuration,
    },
}

/// A full event trace of one exchange.
pub type RrTrace = Vec<TraceEvent>;

/// FNV-1a hash of a trace's canonical byte encoding — a compact
/// fingerprint for regression tests ("byte-identical traces").
pub fn trace_fingerprint(trace: &[TraceEvent]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for ev in trace {
        match *ev {
            TraceEvent::ResponseSent { node, at } => {
                eat(1);
                eat(u64::from(node));
                eat(at.as_nanos());
            }
            TraceEvent::Suppressed {
                node,
                scheduled_at,
                heard_at,
            } => {
                eat(2);
                eat(u64::from(node));
                eat(scheduled_at.as_nanos());
                eat(heard_at.as_nanos());
            }
            TraceEvent::ResponseAtRequester { from, at } => {
                eat(3);
                eat(u64::from(from));
                eat(at.as_nanos());
            }
        }
    }
    h
}

/// Pre-registered metric ids for the request–response driver.
#[derive(Debug, Clone, Copy)]
struct RrMetrics {
    requests: CounterId,
    responses_sent: CounterId,
    suppressed: CounterId,
    at_requester: CounterId,
    first_response_ms: HistogramId,
}

impl RrMetrics {
    /// Bucket bounds for the first-response latency histogram, ms.
    const FIRST_BOUNDS_MS: [u64; 6] = [50, 100, 250, 500, 1_000, 5_000];

    fn register(t: &mut Telemetry) -> RrMetrics {
        RrMetrics {
            requests: t.counter("rr.requests"),
            responses_sent: t.counter("rr.responses_sent"),
            suppressed: t.counter("rr.suppressed"),
            at_requester: t.counter("rr.responses_at_requester"),
            first_response_ms: t.histogram("rr.first_response_ms", &Self::FIRST_BOUNDS_MS),
        }
    }
}

/// A reusable harness over one topology: caches the shared tree.
pub struct RrSim<'a> {
    topo: &'a Topology,
    shared: Option<SharedTree>,
    /// Suppression-decision telemetry.  Pure bookkeeping on the driver
    /// side: recording never draws from the run's RNG, so the golden
    /// trace fingerprints are unaffected.
    telemetry: Telemetry,
    metrics: RrMetrics,
}

impl<'a> RrSim<'a> {
    /// Wrap a topology.
    pub fn new(topo: &'a Topology) -> Self {
        let mut telemetry = Telemetry::new(0, 0);
        let metrics = RrMetrics::register(&mut telemetry);
        RrSim {
            topo,
            shared: None,
            telemetry,
            metrics,
        }
    }

    /// The harness's telemetry bundle (suppression decisions, response
    /// counts, first-response latency histogram).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable access, e.g. to stamp an identity or adjust the filter.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Turn recording on or off.
    pub fn set_telemetry_enabled(&mut self, on: bool) {
        self.telemetry.set_enabled(on);
    }

    fn shared_tree(&mut self) -> &SharedTree {
        self.shared
            .get_or_insert_with(|| SharedTree::with_central_core(self.topo))
    }

    /// Run one request–response exchange from `requester`, with all
    /// other nodes as group members.
    pub fn run_once(
        &mut self,
        params: &RrParams,
        requester: NodeId,
        rng: &mut SimRng,
    ) -> RrOutcome {
        self.run_once_impl(params, requester, rng, None)
    }

    /// Like [`Self::run_once`], additionally recording the full event
    /// trace (sends, suppressions, arrivals at the requester) in
    /// processing order.
    pub fn run_once_traced(
        &mut self,
        params: &RrParams,
        requester: NodeId,
        rng: &mut SimRng,
    ) -> (RrOutcome, RrTrace) {
        let mut trace = Vec::new();
        let outcome = self.run_once_impl(params, requester, rng, Some(&mut trace));
        (outcome, trace)
    }

    // lint:allow(panic-reach): i indexes parallel n-element arrays built in this fn
    fn run_once_impl(
        &mut self,
        params: &RrParams,
        requester: NodeId,
        rng: &mut SimRng,
        mut trace: Option<&mut RrTrace>,
    ) -> RrOutcome {
        let n = self.topo.node_count();
        assert!(requester.index() < n, "requester out of range");
        self.telemetry.inc(self.metrics.requests);

        // -- request delivery: arrival time of the request at each node.
        let (arrival, _hops) = self.delays_from(params, requester, rng);

        // -- each member picks a response-send time.
        #[derive(Clone, Copy)]
        struct Candidate {
            node: NodeId,
            send_at: SimDuration,
        }
        let mut candidates: Vec<Candidate> = Vec::with_capacity(n - 1);
        let member_count = (n - 1) as u64;
        let mut rank = 0u64;
        #[allow(clippy::needless_range_loop)] // i indexes two parallel arrays
        for i in 0..n {
            if i == requester.index() {
                continue;
            }
            let my_rank = rank;
            rank += 1;
            let Some(a) = arrival[i] else { continue };
            let window = (params.d1, params.d2);
            // Non-announcers wait out the announcers' whole window first.
            let (d1, d2) = match params.population {
                Population::All => window,
                Population::AnnouncersFirst { fraction } => {
                    if rng.chance(fraction) {
                        window
                    } else {
                        (window.1, window.1 + (window.1 - window.0))
                    }
                }
            };
            let d = match params.dist {
                DelayDist::Uniform => uniform_delay(rng, d1, d2),
                DelayDist::Exponential => exponential_delay(rng, d1, d2, params.rtt),
                DelayDist::Ranked => {
                    // Deterministic slot by rank, fuzzed within the slot.
                    let span = (d2 - d1).as_nanos() as f64;
                    let u = rng.f64();
                    let frac = (my_rank as f64 + u) / member_count.max(1) as f64;
                    d1 + sdalloc_sim::SimDuration::from_nanos((span * frac) as u64)
                }
            };
            candidates.push(Candidate {
                node: NodeId(i as u32),
                send_at: a + d,
            });
        }
        // Earliest first; ties broken by node id for determinism.
        candidates.sort_by_key(|c| (c.send_at, c.node.0));

        // -- suppression sweep: every member runs the pure responder
        // machine ([`responder_step`]); this driver merely orders the
        // events.  Each member is fed its `Request` (scheduling the
        // send), then deadlines fire in send order; every transmission
        // immediately delivers `HearResponse` events to the later
        // candidates its response reaches.
        let mut machines: Vec<ResponderState> = vec![ResponderState::Idle; n];
        for c in &candidates {
            let (s, _) = responder_step(
                machines[c.node.index()],
                RrEvent::Request { send_at: c.send_at },
            );
            machines[c.node.index()] = s;
        }
        let mut responses = 0usize;
        let mut first_at_requester: Option<SimDuration> = None;

        for idx in 0..candidates.len() {
            let c = candidates[idx];
            let (next, outputs) = responder_step(machines[c.node.index()], RrEvent::Deadline);
            machines[c.node.index()] = next;
            if let ResponderState::Suppressed {
                scheduled_at,
                heard_at,
            } = next
            {
                self.telemetry.inc(self.metrics.suppressed);
                self.telemetry.record(
                    scheduled_at.as_nanos(),
                    Severity::Debug,
                    "rr",
                    "suppressed",
                    [
                        ("node", u64::from(c.node.0)),
                        ("heard_ns", heard_at.as_nanos()),
                        NO_ARG,
                    ],
                );
                if let Some(tr) = trace.as_deref_mut() {
                    tr.push(TraceEvent::Suppressed {
                        node: c.node.0,
                        scheduled_at,
                        heard_at,
                    });
                }
                continue; // heard someone else in time
            }
            for out in outputs {
                let RrOutput::SendResponse { at: sent_at } = out;
                responses += 1;
                self.telemetry.inc(self.metrics.responses_sent);
                self.telemetry.record(
                    sent_at.as_nanos(),
                    Severity::Debug,
                    "rr",
                    "response_sent",
                    [("node", u64::from(c.node.0)), NO_ARG, NO_ARG],
                );
                if let Some(tr) = trace.as_deref_mut() {
                    tr.push(TraceEvent::ResponseSent {
                        node: c.node.0,
                        at: sent_at,
                    });
                }
                let (resp_delay, resp_hops) = self.delays_from(params, c.node, rng);
                // Arrival at the requester.
                if let Some(d) = resp_delay[requester.index()] {
                    let at = sent_at + d;
                    self.telemetry.inc(self.metrics.at_requester);
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.push(TraceEvent::ResponseAtRequester { from: c.node.0, at });
                    }
                    first_at_requester = Some(match first_at_requester {
                        None => at,
                        Some(prev) => prev.min(at),
                    });
                }
                // Deliver to the later candidates.
                for later in &candidates[idx + 1..] {
                    let j = later.node.index();
                    if let Some(d) = resp_delay[j] {
                        let (s, _) =
                            responder_step(machines[j], RrEvent::HearResponse { at: sent_at + d });
                        machines[j] = s;
                    }
                }
                let _ = resp_hops; // hop counts reserved for stats
            }
        }

        if let Some(first) = first_at_requester {
            self.telemetry
                .observe(self.metrics.first_response_ms, first.as_nanos() / 1_000_000);
        }

        RrOutcome {
            responses,
            first_response: first_at_requester,
        }
    }

    /// One-to-all delivery delays from `src` under the params' routing
    /// mode, with optional per-hop jitter resampled per packet.
    /// Returns `(delay per node, hops per node)`; `None` = unreachable.
    // lint:allow(panic-reach): every array is sized to node_count, i ranges below n, and src is a node of the same topology
    fn delays_from(
        &mut self,
        params: &RrParams,
        src: NodeId,
        rng: &mut SimRng,
    ) -> (Vec<Option<SimDuration>>, Vec<u32>) {
        let n = self.topo.node_count();
        let mut delays: Vec<Option<SimDuration>> = vec![None; n];
        let mut hops: Vec<u32> = vec![0; n];
        match params.tree {
            TreeMode::SourceTrees => {
                let tree = SourceTree::compute(self.topo, src);
                for i in 0..n {
                    if tree.metric[i] != u32::MAX {
                        delays[i] = Some(tree.delay[i]);
                        hops[i] = tree.hops[i];
                    }
                }
            }
            TreeMode::SharedTree => {
                let shared = self.shared_tree().clone();
                for i in 0..n {
                    let v = NodeId(i as u32);
                    if let Some(d) = shared.path_delay(src, v) {
                        delays[i] = Some(d);
                        hops[i] = shared.path_hops(src, v).unwrap_or(0);
                    }
                }
            }
        }
        if let Some(j) = params.jitter_per_hop {
            if !j.is_zero() {
                for i in 0..n {
                    if let Some(d) = delays[i] {
                        let mut extra = SimDuration::ZERO;
                        for _ in 0..hops[i] {
                            extra += SimDuration::from_nanos(rng.below(j.as_nanos().max(1)));
                        }
                        delays[i] = Some(d + extra);
                    }
                }
            }
        }
        delays[src.index()] = Some(SimDuration::ZERO);
        (delays, hops)
    }
}

/// Aggregates over repeated runs: the numbers plotted in Figures 15/16/19.
#[derive(Debug, Clone, Copy)]
pub struct RrAggregate {
    /// Mean number of responses.
    pub mean_responses: f64,
    /// Mean first-response delay in seconds (over runs where anyone
    /// responded).
    pub mean_first_response_secs: f64,
    /// Maximum first-response delay seen.
    pub max_first_response_secs: f64,
}

/// Run `repeats` request–response exchanges from random requesters and
/// aggregate.
pub fn run_many(
    topo: &Topology,
    params: &RrParams,
    repeats: usize,
    rng: &mut SimRng,
) -> RrAggregate {
    let mut sim = RrSim::new(topo);
    let mut responses = 0.0;
    let mut first_sum = 0.0;
    let mut first_max: f64 = 0.0;
    let mut first_count = 0usize;
    for _ in 0..repeats {
        let requester = NodeId(rng.below(topo.node_count() as u64) as u32);
        let out = sim.run_once(params, requester, rng);
        responses += out.responses as f64;
        if let Some(f) = out.first_response {
            let secs = f.as_secs_f64();
            first_sum += secs;
            first_max = first_max.max(secs);
            first_count += 1;
        }
    }
    RrAggregate {
        mean_responses: responses / repeats.max(1) as f64,
        mean_first_response_secs: if first_count > 0 {
            first_sum / first_count as f64
        } else {
            0.0
        },
        max_first_response_secs: first_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_topology::doar::{generate, DoarParams};

    fn s(x: f64) -> SimDuration {
        SimDuration::from_secs_f64(x)
    }

    fn topo(n: usize, seed: u64) -> Topology {
        generate(&DoarParams::new(n, seed))
    }

    #[test]
    fn everyone_responds_with_zero_window() {
        // D1 = D2 = 0: all members send before any response can arrive.
        let t = topo(50, 1);
        let mut sim = RrSim::new(&t);
        let params = RrParams {
            tree: TreeMode::SourceTrees,
            dist: DelayDist::Uniform,
            d1: SimDuration::ZERO,
            d2: SimDuration::ZERO,
            rtt: SimDuration::from_millis(200),
            jitter_per_hop: None,
            population: Population::All,
        };
        let mut rng = SimRng::new(2);
        let out = sim.run_once(&params, NodeId(0), &mut rng);
        assert_eq!(out.responses, 49);
        assert!(out.first_response.is_some());
    }

    #[test]
    fn huge_window_suppresses_to_few() {
        let t = topo(300, 3);
        let mut sim = RrSim::new(&t);
        let params = RrParams::figure15a(s(60.0));
        let mut rng = SimRng::new(4);
        let out = sim.run_once(&params, NodeId(0), &mut rng);
        assert!(
            out.responses < 20,
            "window ≫ network delays should suppress most: {}",
            out.responses
        );
        assert!(out.responses >= 1);
    }

    #[test]
    fn more_suppression_with_longer_window() {
        let t = topo(400, 5);
        let mut rng = SimRng::new(6);
        let short = run_many(&t, &RrParams::figure15a(s(0.2)), 10, &mut rng);
        let long = run_many(&t, &RrParams::figure15a(s(20.0)), 10, &mut rng);
        assert!(
            long.mean_responses < short.mean_responses,
            "short {} long {}",
            short.mean_responses,
            long.mean_responses
        );
        // And the first response takes correspondingly longer.
        assert!(long.mean_first_response_secs > short.mean_first_response_secs);
    }

    #[test]
    fn exponential_beats_uniform_at_large_groups() {
        // The Figure 19 claim: for a window that gives the uniform scheme
        // trouble at this group size, the exponential scheme responds
        // with only a couple of messages.
        let t = topo(800, 7);
        let mut rng = SimRng::new(8);
        let window = s(3.2);
        let mut uni = RrParams::figure15a(window);
        uni.dist = DelayDist::Uniform;
        let mut exp = RrParams::figure15a(window);
        exp.dist = DelayDist::Exponential;
        let u = run_many(&t, &uni, 8, &mut rng);
        let e = run_many(&t, &exp, 8, &mut rng);
        assert!(
            e.mean_responses < u.mean_responses,
            "uniform {} exponential {}",
            u.mean_responses,
            e.mean_responses
        );
        assert!(e.mean_responses < 8.0, "exponential {}", e.mean_responses);
    }

    #[test]
    fn shared_tree_mode_works() {
        let t = topo(200, 9);
        let mut sim = RrSim::new(&t);
        let params = RrParams {
            tree: TreeMode::SharedTree,
            dist: DelayDist::Uniform,
            d1: SimDuration::ZERO,
            d2: s(5.0),
            rtt: SimDuration::from_millis(200),
            jitter_per_hop: None,
            population: Population::All,
        };
        let mut rng = SimRng::new(10);
        let out = sim.run_once(&params, NodeId(17), &mut rng);
        assert!(out.responses >= 1);
        assert!(out.first_response.is_some());
    }

    #[test]
    fn jitter_changes_outcomes_but_not_sanity() {
        let t = topo(200, 11);
        let mut params = RrParams::figure15a(s(2.0));
        params.jitter_per_hop = Some(SimDuration::from_millis(20));
        let mut rng = SimRng::new(12);
        let agg = run_many(&t, &params, 5, &mut rng);
        assert!(agg.mean_responses >= 1.0);
        assert!(agg.mean_first_response_secs > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = topo(150, 13);
        let params = RrParams::figure15a(s(1.0));
        let mut r1 = SimRng::new(14);
        let mut r2 = SimRng::new(14);
        let a = run_many(&t, &params, 5, &mut r1);
        let b = run_many(&t, &params, 5, &mut r2);
        assert_eq!(a.mean_responses, b.mean_responses);
        assert_eq!(a.mean_first_response_secs, b.mean_first_response_secs);
    }

    #[test]
    fn ranked_delays_beat_uniform() {
        // Section 3.1's ranking lever: a total order on sites thins the
        // early slots far below a uniform draw.  (Request-arrival skew
        // and return-path delay keep it above exactly one response.)
        let t = topo(500, 17);
        let mut rng = SimRng::new(18);
        let window = s(2.0);
        let mut uniform = RrParams::figure15a(window);
        uniform.dist = DelayDist::Uniform;
        let mut ranked = RrParams::figure15a(window);
        ranked.dist = DelayDist::Ranked;
        let u = run_many(&t, &uniform, 5, &mut rng);
        let r = run_many(&t, &ranked, 5, &mut rng);
        assert!(
            r.mean_responses < u.mean_responses,
            "uniform {} vs ranked {}",
            u.mean_responses,
            r.mean_responses
        );
        assert!(
            r.mean_responses < 12.0,
            "ranked too chatty: {}",
            r.mean_responses
        );
    }

    #[test]
    fn ranked_first_response_is_fast() {
        // The best-ranked member's slot is (d2-d1)/n wide, so the first
        // response lands long before the window ends.
        let t = topo(400, 19);
        let mut sim = RrSim::new(&t);
        let mut params = RrParams::figure15a(s(10.0));
        params.dist = DelayDist::Ranked;
        let mut rng = SimRng::new(20);
        let out = sim.run_once(&params, NodeId(3), &mut rng);
        let first = out.first_response.unwrap().as_secs_f64();
        assert!(first < 2.0, "first ranked response at {first}s");
    }

    #[test]
    fn announcers_first_reduces_effective_population() {
        // With 5% announcers, the expected response count should match a
        // population of ~n/20, clearly below the full-population run at
        // the same window.
        let t = topo(600, 21);
        let mut rng = SimRng::new(22);
        let window = s(1.6);
        let mut all = RrParams::figure15a(window);
        all.population = Population::All;
        let mut tiered = RrParams::figure15a(window);
        tiered.population = Population::AnnouncersFirst { fraction: 0.05 };
        let a = run_many(&t, &all, 8, &mut rng);
        let b = run_many(&t, &tiered, 8, &mut rng);
        assert!(
            b.mean_responses < a.mean_responses,
            "all {} vs tiered {}",
            a.mean_responses,
            b.mean_responses
        );
    }

    #[test]
    fn announcers_first_zero_fraction_still_responds() {
        // Degenerate tier: nobody is an announcer, everyone defers —
        // responses still happen, just later.
        let t = topo(100, 23);
        let mut sim = RrSim::new(&t);
        let mut params = RrParams::figure15a(s(1.0));
        params.population = Population::AnnouncersFirst { fraction: 0.0 };
        let mut rng = SimRng::new(24);
        let out = sim.run_once(&params, NodeId(0), &mut rng);
        assert!(out.responses >= 1);
        assert!(out.first_response.unwrap() >= s(1.0));
    }

    #[test]
    fn first_response_includes_return_path() {
        // With a single other node at delay δ and D=0 the first response
        // arrives at 2δ (request out, response back).
        let mut t = Topology::new();
        let a = t.add_simple_node();
        let b = t.add_simple_node();
        t.add_link(a, b, 1, 1, SimDuration::from_millis(30));
        let mut sim = RrSim::new(&t);
        let params = RrParams {
            tree: TreeMode::SourceTrees,
            dist: DelayDist::Uniform,
            d1: SimDuration::ZERO,
            d2: SimDuration::ZERO,
            rtt: SimDuration::from_millis(200),
            jitter_per_hop: None,
            population: Population::All,
        };
        let mut rng = SimRng::new(15);
        let out = sim.run_once(&params, a, &mut rng);
        assert_eq!(out.responses, 1);
        assert_eq!(out.first_response, Some(SimDuration::from_millis(60)));
    }

    #[test]
    fn refactor_traces_match_pre_refactor_golden() {
        // Regression anchor for the pure `responder_step` refactor: the
        // fingerprints below were captured from the pre-refactor inline
        // suppression sweep (direct `suppressed_at` bookkeeping) under
        // these three fixed seeds.  The state-machine-driven sweep must
        // reproduce the event traces byte for byte.
        let golden = [
            (
                31u64,
                101u64,
                5usize,
                Some(110_550_349u64),
                124usize,
                0x53a6_0713_9f7d_252d_u64,
            ),
            (32, 202, 3, Some(26_137_807), 122, 0x14f8_228f_564e_c2b3),
            (33, 303, 6, Some(65_073_247), 125, 0xab32_7272_51c4_d91f),
        ];
        for (topo_seed, rng_seed, responses, first_ns, trace_len, fp) in golden {
            let t = topo(120, topo_seed);
            let mut sim = RrSim::new(&t);
            let params = RrParams::figure15a(s(1.5));
            let mut rng = SimRng::new(rng_seed);
            let (out, trace) = sim.run_once_traced(&params, NodeId(3), &mut rng);
            assert_eq!(out.responses, responses, "seed ({topo_seed},{rng_seed})");
            assert_eq!(
                out.first_response.map(SimDuration::as_nanos),
                first_ns,
                "seed ({topo_seed},{rng_seed})"
            );
            assert_eq!(trace.len(), trace_len, "seed ({topo_seed},{rng_seed})");
            assert_eq!(
                trace_fingerprint(&trace),
                fp,
                "seed ({topo_seed},{rng_seed}): trace diverged from pre-refactor history"
            );
        }
    }

    #[test]
    fn telemetry_counts_match_outcome() {
        let t = topo(150, 41);
        let params = RrParams::figure15a(s(2.0));
        let mut sim = RrSim::new(&t);
        sim.telemetry_mut().set_identity(0, 7);
        let mut rng = SimRng::new(7);
        let out = sim.run_once(&params, NodeId(5), &mut rng);
        let m = &sim.telemetry().metrics;
        assert_eq!(m.counter_by_name("rr.requests"), 1);
        assert_eq!(m.counter_by_name("rr.responses_sent"), out.responses as u64);
        // Every member either responded or was suppressed.
        assert_eq!(
            m.counter_by_name("rr.responses_sent") + m.counter_by_name("rr.suppressed"),
            (t.node_count() - 1) as u64
        );
        let snap = sim.telemetry().snapshot_json();
        assert!(snap.contains("\"rr.first_response_ms\""), "{snap}");
        // Telemetry is pure bookkeeping: a telemetry-off run consumes
        // the RNG identically and yields the same outcome.
        let mut quiet = RrSim::new(&t);
        quiet.set_telemetry_enabled(false);
        let mut rng2 = SimRng::new(7);
        let out2 = quiet.run_once(&params, NodeId(5), &mut rng2);
        assert_eq!(out, out2);
        assert_eq!(quiet.telemetry().metrics.counter_by_name("rr.requests"), 0);
    }

    #[test]
    fn untraced_and_traced_agree() {
        let t = topo(150, 41);
        let params = RrParams::figure15a(s(2.0));
        let mut sim1 = RrSim::new(&t);
        let mut sim2 = RrSim::new(&t);
        let mut r1 = SimRng::new(7);
        let mut r2 = SimRng::new(7);
        let a = sim1.run_once(&params, NodeId(5), &mut r1);
        let (b, trace) = sim2.run_once_traced(&params, NodeId(5), &mut r2);
        assert_eq!(a, b);
        let sent = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::ResponseSent { .. }))
            .count();
        assert_eq!(sent, a.responses);
    }
}
