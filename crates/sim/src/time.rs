//! Simulated time.
//!
//! The simulator uses a discrete virtual clock measured in integer
//! nanoseconds.  Integer time keeps event ordering exactly reproducible
//! across platforms (no floating-point accumulation), while nanosecond
//! resolution is fine enough to express the sub-millisecond queueing
//! jitter used in the request–response simulations and coarse enough to
//! cover multi-day session lifetimes without overflow (`u64` nanoseconds
//! covers ~584 years).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (saturating at the representable
    /// range; negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_f64_to_nanos(s))
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since the epoch in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time since the epoch in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction yielding a duration.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000_000)
    }

    /// Construct from fractional seconds (clamped to the representable
    /// range; negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_f64_to_nanos(s))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Multiply by a non-negative float, saturating.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration(secs_f64_to_nanos(self.as_secs_f64() * k))
    }
}

fn secs_f64_to_nanos(s: f64) -> u64 {
    // NaN or non-positive → zero (NaN fails the comparison).
    if s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return 0;
    }
    let ns = s * 1e9;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_micros(250).as_nanos(), 250_000);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(d * 4, SimDuration::from_secs(12));
        assert_eq!(d / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn subtraction_saturates() {
        let t = SimTime::from_secs(1);
        assert_eq!(t - SimDuration::from_secs(5), SimTime::ZERO);
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_conversion_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d.as_nanos(), 250_000_000);
    }

    #[test]
    fn mul_f64() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
