//! Deterministic fault-injection plans.
//!
//! The channel models in [`crate::channel`] express the paper's steady
//! operating point: independent Bernoulli loss and per-packet jitter.
//! Real deployments fail in *correlated* ways — burst loss, network
//! partitions that later heal, hosts that crash and restart with empty
//! caches, skewed clocks, announcement storms and damaged datagrams.  A
//! [`FaultPlan`] is a seeded, fully deterministic description of such a
//! failure scenario: a set of timed windows and events that a harness
//! (e.g. the SAP testbed) consults while it drives the real protocol
//! code.  Because every decision is a pure function of `(plan, time,
//! rng)`, the same plan and seed reproduce the same run bit-for-bit.
//!
//! The plan composes with — never replaces — the baseline
//! [`crate::channel::LossModel`]/[`crate::channel::DelayModel`]: burst
//! windows add loss on top of the channel's own drop probability, and
//! partitions/crashes gate delivery entirely.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A timed window of elevated packet loss (correlated burst loss).
#[derive(Debug, Clone, PartialEq)]
pub struct LossWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Additional independent drop probability while the window is
    /// active, applied after the channel's own loss process.
    pub drop_probability: f64,
}

/// A zone partition: while active, no packet crosses between the two
/// node sets (either direction).  Nodes in neither set are unaffected —
/// they hear, and are heard by, both sides, which is exactly the
/// asymmetry behind the paper's Section 3 third-party scenarios.  The
/// window end is the heal event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Heal time (exclusive — traffic flows again from here on).
    pub until: SimTime,
    /// One side of the cut.
    pub a: Vec<usize>,
    /// The other side.
    pub b: Vec<usize>,
}

/// A node crash, with an optional restart.  While down the node neither
/// sends nor receives; on restart it comes back with an empty cache
/// (state loss is the interesting part).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Which node crashes.
    pub node: usize,
    /// When it goes down.
    pub at: SimTime,
    /// When it comes back, if ever.
    pub restart_at: Option<SimTime>,
}

/// How a corrupted packet is damaged on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Cut the datagram short at a random offset.
    Truncate,
    /// Flip one random bit.
    BitFlip,
    /// Overwrite the whole datagram with random bytes.
    Garbage,
}

impl CorruptionMode {
    /// Damage `bytes` in place using `rng`.  Empty buffers are left
    /// untouched; the result may or may not still decode, which is the
    /// point — receivers must tolerate both.
    pub fn apply(self, bytes: &mut Vec<u8>, rng: &mut SimRng) {
        if bytes.is_empty() {
            return;
        }
        match self {
            CorruptionMode::Truncate => {
                let keep = rng.below(bytes.len() as u64) as usize;
                bytes.truncate(keep);
            }
            CorruptionMode::BitFlip => {
                let bit = rng.below(bytes.len() as u64 * 8);
                let idx = (bit / 8) as usize;
                if let Some(b) = bytes.get_mut(idx) {
                    *b ^= 1 << (bit % 8);
                }
            }
            CorruptionMode::Garbage => {
                for b in bytes.iter_mut() {
                    *b = rng.below(256) as u8;
                }
            }
        }
    }
}

/// A timed window during which packets may be corrupted in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Per-packet corruption probability while active.
    pub probability: f64,
    /// The kind of damage applied.
    pub mode: CorruptionMode,
}

/// An announcement storm: at `at`, `packets` forged announcements are
/// blasted into the scope (the harness decides their content).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Storm {
    /// When the storm fires.
    pub at: SimTime,
    /// How many forged packets it injects.
    pub packets: u32,
}

/// A deterministic, seeded fault-injection scenario.
///
/// Build one with the chainable `with_*` methods, then query it from
/// the harness's delivery path:
///
/// ```
/// use sdalloc_sim::{FaultPlan, SimTime};
/// let plan = FaultPlan::new()
///     .with_partition(SimTime::from_secs(10), SimTime::from_secs(60), vec![0], vec![1])
///     .with_burst_loss(SimTime::from_secs(100), SimTime::from_secs(110), 1.0);
/// assert!(plan.delivers(SimTime::from_secs(5), 0, 1));
/// assert!(!plan.delivers(SimTime::from_secs(30), 0, 1));
/// assert!(plan.delivers(SimTime::from_secs(60), 0, 1)); // healed
/// assert_eq!(plan.extra_drop(SimTime::from_secs(105)), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Burst-loss windows.
    // lint:allow(unbounded-growth): a fault plan is authored before the run and dropped with it; it never grows during execution
    pub burst_loss: Vec<LossWindow>,
    /// Partition windows (heal at window end).
    // lint:allow(unbounded-growth): a fault plan is authored before the run and dropped with it; it never grows during execution
    pub partitions: Vec<PartitionWindow>,
    /// Crash/restart events.
    // lint:allow(unbounded-growth): a fault plan is authored before the run and dropped with it; it never grows during execution
    pub crashes: Vec<CrashEvent>,
    /// Packet-corruption windows.
    // lint:allow(unbounded-growth): a fault plan is authored before the run and dropped with it; it never grows during execution
    pub corruption: Vec<CorruptWindow>,
    /// Announcement storms.
    // lint:allow(unbounded-growth): a fault plan is authored before the run and dropped with it; it never grows during execution
    pub storms: Vec<Storm>,
    /// Per-node clock offsets in nanoseconds (local = global + offset).
    skew: Vec<(usize, i64)>,
}

fn window_active(from: SimTime, until: SimTime, now: SimTime) -> bool {
    from <= now && now < until
}

impl FaultPlan {
    /// An empty plan: no faults, every query is a no-op.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a burst-loss window.
    pub fn with_burst_loss(mut self, from: SimTime, until: SimTime, drop_probability: f64) -> Self {
        self.burst_loss.push(LossWindow {
            from,
            until,
            drop_probability: drop_probability.clamp(0.0, 1.0),
        });
        self
    }

    /// Add a partition between node sets `a` and `b`, healing at `until`.
    pub fn with_partition(
        mut self,
        from: SimTime,
        until: SimTime,
        a: Vec<usize>,
        b: Vec<usize>,
    ) -> Self {
        self.partitions.push(PartitionWindow { from, until, a, b });
        self
    }

    /// Add a crash of `node` at `at`, restarting at `restart_at` if given.
    pub fn with_crash(mut self, node: usize, at: SimTime, restart_at: Option<SimTime>) -> Self {
        self.crashes.push(CrashEvent {
            node,
            at,
            restart_at,
        });
        self
    }

    /// Add a corruption window.
    pub fn with_corruption(
        mut self,
        from: SimTime,
        until: SimTime,
        probability: f64,
        mode: CorruptionMode,
    ) -> Self {
        self.corruption.push(CorruptWindow {
            from,
            until,
            probability: probability.clamp(0.0, 1.0),
            mode,
        });
        self
    }

    /// Add an announcement storm.
    pub fn with_storm(mut self, at: SimTime, packets: u32) -> Self {
        self.storms.push(Storm { at, packets });
        self
    }

    /// Give `node` a constant clock offset (nanoseconds; local clock =
    /// global clock + offset, so a positive offset runs fast).
    pub fn with_clock_skew(mut self, node: usize, offset_nanos: i64) -> Self {
        self.skew.retain(|&(n, _)| n != node);
        self.skew.push((node, offset_nanos));
        self
    }

    /// Whether a packet from `from` can reach `to` at `now`, considering
    /// only partitions (loss and crashes are separate queries).
    pub fn delivers(&self, now: SimTime, from: usize, to: usize) -> bool {
        for w in &self.partitions {
            if !window_active(w.from, w.until, now) {
                continue;
            }
            let cut = (w.a.contains(&from) && w.b.contains(&to))
                || (w.b.contains(&from) && w.a.contains(&to));
            if cut {
                return false;
            }
        }
        true
    }

    /// The additional drop probability active at `now` (the maximum over
    /// overlapping burst windows; 0.0 when none is active).
    pub fn extra_drop(&self, now: SimTime) -> f64 {
        let mut p: f64 = 0.0;
        for w in &self.burst_loss {
            if window_active(w.from, w.until, now) {
                p = p.max(w.drop_probability);
            }
        }
        p
    }

    /// Whether `node` is up at `now`.
    pub fn node_up(&self, now: SimTime, node: usize) -> bool {
        for c in &self.crashes {
            if c.node != node || now < c.at {
                continue;
            }
            match c.restart_at {
                Some(r) if now >= r => {}
                _ => return false,
            }
        }
        true
    }

    /// The corruption process active at `now`, if any (first matching
    /// window wins).
    pub fn corruption_at(&self, now: SimTime) -> Option<(f64, CorruptionMode)> {
        self.corruption
            .iter()
            .find(|w| window_active(w.from, w.until, now))
            .map(|w| (w.probability, w.mode))
    }

    /// The clock offset of `node` in nanoseconds (0 when unskewed).
    pub fn clock_offset(&self, node: usize) -> i64 {
        self.skew
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, o)| o)
            .unwrap_or(0)
    }

    /// Convert global simulation time to `node`'s local clock.
    pub fn local_time(&self, node: usize, global: SimTime) -> SimTime {
        let o = self.clock_offset(node);
        if o >= 0 {
            global + SimDuration::from_nanos(o as u64)
        } else {
            global - SimDuration::from_nanos(o.unsigned_abs())
        }
    }

    /// Convert `node`'s local clock reading back to global time (inverse
    /// of [`Self::local_time`], up to saturation at the epoch).
    pub fn global_time(&self, node: usize, local: SimTime) -> SimTime {
        let o = self.clock_offset(node);
        if o >= 0 {
            local - SimDuration::from_nanos(o as u64)
        } else {
            local + SimDuration::from_nanos(o.unsigned_abs())
        }
    }

    /// Whether the plan contains any fault at all.
    pub fn is_empty(&self) -> bool {
        self.burst_loss.is_empty()
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.corruption.is_empty()
            && self.storms.is_empty()
            && self.skew.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn empty_plan_is_transparent() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert!(p.delivers(t(0), 0, 1));
        assert_eq!(p.extra_drop(t(0)), 0.0);
        assert!(p.node_up(t(0), 3));
        assert!(p.corruption_at(t(0)).is_none());
        assert_eq!(p.local_time(0, t(7)), t(7));
    }

    #[test]
    fn partition_window_boundaries() {
        let p = FaultPlan::new().with_partition(t(10), t(60), vec![0, 2], vec![1]);
        assert!(p.delivers(t(9), 0, 1));
        assert!(!p.delivers(t(10), 0, 1), "start is inclusive");
        assert!(!p.delivers(t(59), 1, 2), "symmetric cut");
        assert!(p.delivers(t(60), 0, 1), "heal is exclusive");
        // A node in neither set hears both sides throughout.
        assert!(p.delivers(t(30), 0, 3));
        assert!(p.delivers(t(30), 3, 1));
        // Within one side traffic flows.
        assert!(p.delivers(t(30), 0, 2));
    }

    #[test]
    fn burst_loss_max_over_overlaps() {
        let p = FaultPlan::new()
            .with_burst_loss(t(0), t(100), 0.3)
            .with_burst_loss(t(50), t(60), 0.9);
        assert_eq!(p.extra_drop(t(10)), 0.3);
        assert_eq!(p.extra_drop(t(55)), 0.9);
        assert_eq!(p.extra_drop(t(100)), 0.0);
        // Probabilities clamp.
        let q = FaultPlan::new().with_burst_loss(t(0), t(1), 7.0);
        assert_eq!(q.extra_drop(t(0)), 1.0);
    }

    #[test]
    fn crash_and_restart() {
        let p = FaultPlan::new()
            .with_crash(1, t(10), Some(t(50)))
            .with_crash(2, t(20), None);
        assert!(p.node_up(t(9), 1));
        assert!(!p.node_up(t(10), 1));
        assert!(!p.node_up(t(49), 1));
        assert!(p.node_up(t(50), 1), "restart is inclusive");
        assert!(!p.node_up(t(1_000_000), 2), "no restart: down forever");
        assert!(p.node_up(t(1_000_000), 0), "other nodes unaffected");
    }

    #[test]
    fn corruption_window_lookup() {
        let p = FaultPlan::new().with_corruption(t(5), t(15), 0.5, CorruptionMode::BitFlip);
        assert!(p.corruption_at(t(4)).is_none());
        assert_eq!(p.corruption_at(t(5)), Some((0.5, CorruptionMode::BitFlip)));
        assert!(p.corruption_at(t(15)).is_none());
    }

    #[test]
    fn clock_skew_roundtrip() {
        let p = FaultPlan::new()
            .with_clock_skew(0, 2_000_000_000)
            .with_clock_skew(1, -500_000_000);
        assert_eq!(p.local_time(0, t(10)), t(12));
        assert_eq!(p.local_time(1, t(10)), SimTime::from_millis(9_500));
        for node in [0usize, 1, 2] {
            let g = t(100);
            assert_eq!(p.global_time(node, p.local_time(node, g)), g);
        }
        // Re-skewing a node replaces the old offset.
        let p = p.with_clock_skew(0, 0);
        assert_eq!(p.clock_offset(0), 0);
    }

    #[test]
    fn corruption_modes_deterministic_and_safe() {
        let mut empty: Vec<u8> = Vec::new();
        let mut rng = SimRng::new(1);
        CorruptionMode::Truncate.apply(&mut empty, &mut rng);
        CorruptionMode::BitFlip.apply(&mut empty, &mut rng);
        CorruptionMode::Garbage.apply(&mut empty, &mut rng);
        assert!(empty.is_empty());

        let base: Vec<u8> = (0..64).collect();
        for mode in [
            CorruptionMode::Truncate,
            CorruptionMode::BitFlip,
            CorruptionMode::Garbage,
        ] {
            let mut a = base.clone();
            let mut b = base.clone();
            mode.apply(&mut a, &mut SimRng::new(42));
            mode.apply(&mut b, &mut SimRng::new(42));
            assert_eq!(a, b, "same seed, same damage ({mode:?})");
        }

        let mut flipped = base.clone();
        CorruptionMode::BitFlip.apply(&mut flipped, &mut SimRng::new(3));
        let diff: usize = flipped
            .iter()
            .zip(&base)
            .map(|(x, y)| (x ^ y).count_ones() as usize)
            .sum();
        assert_eq!(diff, 1, "bit flip changes exactly one bit");

        let mut cut = base.clone();
        CorruptionMode::Truncate.apply(&mut cut, &mut SimRng::new(4));
        assert!(cut.len() < base.len());
    }

    #[test]
    fn storm_listing() {
        let p = FaultPlan::new().with_storm(t(30), 200);
        assert_eq!(p.storms.len(), 1);
        assert_eq!(p.storms[0].packets, 200);
    }
}
