//! Statistics helpers used throughout the experiment harness.
//!
//! Includes the median filter the paper applies to its clash-probability
//! tables ("the precise value of n … is discovered by using a median
//! filter to remove remaining noise"), simple histograms for the
//! hop-count distributions of Figure 10, and running summary statistics.

/// Running mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN-free; +inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / total as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / total as f64;
        self.n = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Integer-bucketed histogram (bucket = value), e.g. hop counts.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    // lint:allow(unbounded-growth): run-scoped accumulator sized by the largest observed sample, not daemon state
    // lint:bounded: one slot per integer bucket up to the largest observed sample (hop counts, TTLs) — a few hundred entries, not per-session state
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation of integer `value`.
    // lint:allow(panic-reach): counts is resized to value + 1 immediately above the index
    pub fn add(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Record `count` observations of `value`.
    // lint:allow(panic-reach): counts is resized to value + 1 immediately above the index
    pub fn add_n(&mut self, value: usize, count: u64) {
        if count == 0 {
            return;
        }
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += count;
        self.total += count;
    }

    /// Count in one bucket.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest bucket index with a non-zero count, or `None` if empty.
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Bucket with the highest count (the paper's "most frequent hop
    /// count"), lowest index on ties; `None` if empty.
    // lint:allow(panic-reach): best is a previously-visited enumerate index of the same vec
    pub fn mode(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let mut best = 0usize;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Mean of the bucketed values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum();
        sum / self.total as f64
    }

    /// Normalised frequencies (sum to 1), one per bucket up to the max.
    pub fn normalized(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Iterate `(value, count)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a slice by linear interpolation
/// between order statistics.  Panics on empty input; NaN values sort
/// after +∞ under IEEE 754 total order rather than panicking.
// lint:allow(panic-reach): lo/hi derive from q*(len-1) with q clamped to [0,1]; emptiness is the asserted contract
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let mut v = data.to_vec();
    v.sort_by(f64::total_cmp);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Sliding-window median filter with the given odd window size.
///
/// Edges are handled by shrinking the window symmetrically, so the output
/// has the same length as the input.  This is the noise-removal step the
/// paper applies before locating the 50%-clash-probability crossing.
// lint:allow(panic-reach): the window radius is clamped to min(i, n-1-i), so lo..=hi stays inside data
pub fn median_filter(data: &[f64], window: usize) -> Vec<f64> {
    assert!(window % 2 == 1, "window must be odd");
    let half = window / 2;
    let n = data.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let radius = half.min(i).min(n - 1 - i);
        let lo = i - radius;
        let hi = i + radius;
        let mut win: Vec<f64> = data[lo..=hi].to_vec();
        win.sort_by(f64::total_cmp);
        out.push(win[win.len() / 2]);
    }
    out
}

/// Median of a slice (panics on empty; NaN sorts last under IEEE 754
/// total order).  Averages the two middle elements for even lengths.
// lint:allow(panic-reach): n/2 and n/2-1 are in-bounds for the non-empty (asserted) sorted copy
pub fn median(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "median of empty slice");
    let mut v = data.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Find the first index where `data[i] >= threshold`, interpolating the
/// fractional crossing point between samples; `None` if never crossed.
///
/// Used to locate "allocations before clash probability exceeds 0.5" on a
/// sampled clash-probability curve.
// lint:allow(panic-reach): i ranges over data.len() and i-1 is guarded by the i == 0 early return
pub fn first_crossing(data: &[f64], threshold: f64) -> Option<f64> {
    for i in 0..data.len() {
        if data[i] >= threshold {
            if i == 0 {
                return Some(0.0);
            }
            let prev = data[i - 1];
            let frac = if data[i] > prev {
                (threshold - prev) / (data[i] - prev)
            } else {
                0.0
            };
            return Some((i - 1) as f64 + frac);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn summary_merge_equals_combined() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.add(x);
        }
        for &x in &data[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_mode_and_mean() {
        let mut h = Histogram::new();
        for v in [3, 3, 3, 7, 7, 10] {
            h.add(v);
        }
        assert_eq!(h.mode(), Some(3));
        assert_eq!(h.max_value(), Some(10));
        assert_eq!(h.total(), 6);
        assert!((h.mean() - 33.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_normalized_sums_to_one() {
        let mut h = Histogram::new();
        for v in 0..50 {
            h.add_n(v, (v % 5 + 1) as u64);
        }
        let norm = h.normalized();
        let sum: f64 = norm.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mode(), None);
        assert_eq!(h.max_value(), None);
        assert!(h.normalized().is_empty());
    }

    #[test]
    fn quantiles() {
        let data: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&data, 0.0), 0.0);
        assert_eq!(quantile(&data, 1.0), 100.0);
        assert_eq!(quantile(&data, 0.5), 50.0);
        assert!((quantile(&data, 0.95) - 95.0).abs() < 1e-9);
        // Interpolation between order statistics.
        assert!((quantile(&[1.0, 2.0], 0.25) - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile of empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn median_filter_removes_spike() {
        let data = vec![1.0, 1.0, 9.0, 1.0, 1.0];
        let filtered = median_filter(&data, 3);
        assert_eq!(filtered, vec![1.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn median_filter_preserves_monotone() {
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let filtered = median_filter(&data, 5);
        assert_eq!(filtered, data);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn crossing_interpolates() {
        let data = vec![0.0, 0.2, 0.4, 0.6, 0.8];
        let x = first_crossing(&data, 0.5).unwrap();
        assert!((x - 2.5).abs() < 1e-12);
    }

    #[test]
    fn crossing_none_when_below() {
        assert_eq!(first_crossing(&[0.0, 0.1, 0.2], 0.5), None);
    }

    #[test]
    fn crossing_at_start() {
        assert_eq!(first_crossing(&[0.7, 0.9], 0.5), Some(0.0));
    }
}
