//! Random response-delay sampling for multicast suppression protocols.
//!
//! When many receivers could all answer the same multicast event (a
//! repair request in SRM, a clash report in the session directory), each
//! delays its response by a random time and suppresses itself if it
//! hears someone else answer first.  The paper studies two delay
//! distributions over the window `[D1, D2]`:
//!
//! * **uniform** — simple, but the expected number of duplicate
//!   responses depends strongly on the receiver-set size (Figures 14–16);
//! * **exponential** — bucket `b` of `d` is chosen with probability
//!   proportional to `2^(b-1)`, i.e. most receivers pick late slots and
//!   only an expected-constant few pick early ones.  In continuous form:
//!
//!   ```text
//!   D = D1 + r · log2(1 + x · (2^d − 1)),   x ~ U[0,1),  d = (D2−D1)/r
//!   ```
//!
//!   where `r` is the bucket width (nominally the maximum RTT).  This
//!   makes the duplicate count nearly independent of the receiver-set
//!   size (Figures 18–19), at a floor of ≈ 1.44 expected responses.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Sample a uniform response delay in `[d1, d2)`.
pub fn uniform_delay(rng: &mut SimRng, d1: SimDuration, d2: SimDuration) -> SimDuration {
    assert!(d2 >= d1, "inverted window");
    let span = (d2 - d1).as_nanos();
    if span == 0 {
        return d1;
    }
    d1 + SimDuration::from_nanos(rng.below(span))
}

/// Sample an exponentially-weighted response delay in `[d1, d2)` with
/// bucket width `r` (the round-trip-time scale).
///
/// ```
/// use sdalloc_sim::{SimRng, SimDuration};
/// use sdalloc_sim::suppression::exponential_delay;
/// let mut rng = SimRng::new(7);
/// let d2 = SimDuration::from_secs(10);
/// let late = (0..1000)
///     .filter(|_| {
///         let d = exponential_delay(&mut rng, SimDuration::ZERO, d2, SimDuration::from_secs(1));
///         d >= SimDuration::from_secs(9)
///     })
///     .count();
/// assert!(late > 400, "half the mass sits in the last bucket; got {late}");
/// ```
///
/// With `d = (d2-d1)/r` buckets, bucket `b` (1-based from the earliest)
/// is hit with probability `2^(b-1) / (2^d − 1)` — late responses are
/// overwhelmingly more likely, so early slots thin out the responder set
/// exponentially.
pub fn exponential_delay(
    rng: &mut SimRng,
    d1: SimDuration,
    d2: SimDuration,
    r: SimDuration,
) -> SimDuration {
    assert!(d2 >= d1, "inverted window");
    assert!(!r.is_zero(), "bucket width must be positive");
    let window = (d2 - d1).as_secs_f64();
    if window == 0.0 {
        return d1;
    }
    let d = window / r.as_secs_f64();
    let x = rng.f64();
    // D = r · log2(1 + x·(2^d − 1)); exp_m1/ln_1p keep precision for
    // small d, and for large d we avoid overflow by noting
    // 2^d − 1 ≈ 2^d when d > 60.
    let delay_secs = if d > 60.0 {
        // log2(1 + x·2^d) = d + log2(x + 2^-d) ≈ d + log2(x) for x ≫ 2^-d.
        let l = if x > 0.0 { d + x.log2() } else { 0.0 };
        r.as_secs_f64() * l.max(0.0)
    } else {
        let pow = (2f64).powf(d) - 1.0;
        r.as_secs_f64() * (1.0 + x * pow).log2()
    };
    d1 + SimDuration::from_secs_f64(delay_secs.min(window))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: f64) -> SimDuration {
        SimDuration::from_secs_f64(x)
    }

    #[test]
    fn uniform_within_window() {
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let d = uniform_delay(&mut rng, s(1.0), s(3.0));
            assert!(d >= s(1.0) && d < s(3.0));
        }
    }

    #[test]
    fn uniform_mean() {
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| uniform_delay(&mut rng, s(0.0), s(2.0)).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_degenerate_window() {
        let mut rng = SimRng::new(3);
        assert_eq!(uniform_delay(&mut rng, s(5.0), s(5.0)), s(5.0));
    }

    #[test]
    fn exponential_within_window() {
        let mut rng = SimRng::new(4);
        for _ in 0..10_000 {
            let d = exponential_delay(&mut rng, s(1.0), s(9.0), s(0.2));
            assert!(d >= s(1.0) && d <= s(9.0), "delay {d}");
        }
    }

    #[test]
    fn exponential_is_late_biased() {
        // With d = 10 buckets, the last bucket holds ~half the mass.
        let mut rng = SimRng::new(5);
        let r = s(1.0);
        let n = 50_000;
        let mut last_bucket = 0u32;
        for _ in 0..n {
            let d = exponential_delay(&mut rng, s(0.0), s(10.0), r);
            if d.as_secs_f64() >= 9.0 {
                last_bucket += 1;
            }
        }
        let frac = last_bucket as f64 / n as f64;
        // bucket 10 has 2^9/(2^10 - 1) ≈ 0.5 of the probability.
        assert!((frac - 0.5).abs() < 0.02, "last-bucket fraction {frac}");
    }

    #[test]
    fn exponential_early_slots_thin() {
        // P(delay < r) = 1/(2^d − 1): with d=10, about 0.1%.
        let mut rng = SimRng::new(6);
        let n = 200_000;
        let early = (0..n)
            .filter(|_| exponential_delay(&mut rng, s(0.0), s(10.0), s(1.0)).as_secs_f64() < 1.0)
            .count();
        let frac = early as f64 / n as f64;
        assert!(frac < 0.004, "early fraction {frac}");
    }

    #[test]
    fn exponential_large_d_stable() {
        // Huge windows relative to RTT must not overflow or go negative.
        let mut rng = SimRng::new(7);
        for _ in 0..1_000 {
            let d = exponential_delay(&mut rng, s(0.0), s(3_276.8), s(0.2));
            assert!(d >= s(0.0) && d <= s(3_276.8), "delay {d}");
        }
    }

    #[test]
    fn exponential_degenerate_window() {
        let mut rng = SimRng::new(8);
        assert_eq!(exponential_delay(&mut rng, s(2.0), s(2.0), s(0.2)), s(2.0));
    }
}
