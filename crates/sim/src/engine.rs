//! The discrete-event simulation engine.
//!
//! A [`Simulator`] owns a priority queue of timestamped events.  Running
//! the simulator pops events in time order and hands each to a
//! user-supplied handler, which may schedule further events through the
//! [`SimContext`] it receives.  Ties in time are broken by insertion
//! order (FIFO), which keeps runs fully deterministic.
//!
//! The engine is intentionally generic over the event payload type `E`:
//! each subsystem (SAP announcements, allocation experiments, the
//! request–response protocol) defines its own event enum rather than
//! sharing one giant variant soup.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A scheduled event: payload plus its due time and a tie-break sequence.
struct Scheduled<E> {
    due: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // and among equal times the lowest sequence number (FIFO).
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Event queue plus clock — the mutable state a handler may touch.
pub struct SimContext<E> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    processed: u64,
    stopped: bool,
}

impl<E> SimContext<E> {
    fn new() -> Self {
        SimContext {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            processed: 0,
            stopped: false,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in a discrete-event
    /// simulation; it panics rather than silently reordering history.
    // lint:allow(wire-taint): the event queue is the simulator's transport — delivering (possibly corrupted) wire packets is its contract, and every entry is popped when due
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            due: at,
            seq,
            payload,
        });
    }

    /// Schedule `payload` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, payload: E) {
        self.schedule_at(self.now + after, payload);
    }

    /// Request that the run loop stop after the current event.
    pub fn stop(&mut self) {
        self.stopped = true;
    }
}

/// A discrete-event simulator over events of type `E`.
pub struct Simulator<E> {
    ctx: SimContext<E>,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Create an empty simulator at t = 0.
    pub fn new() -> Self {
        Simulator {
            ctx: SimContext::new(),
        }
    }

    /// Access the context to seed initial events before running.
    pub fn context(&mut self) -> &mut SimContext<E> {
        &mut self.ctx
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now
    }

    /// Run until the queue is empty or [`SimContext::stop`] is called.
    ///
    /// Returns the number of events processed by this call.
    pub fn run<F>(&mut self, mut handler: F) -> u64
    where
        F: FnMut(&mut SimContext<E>, E),
    {
        self.run_until(SimTime::MAX, &mut handler)
    }

    /// Run until the queue is empty, the handler stops the run, or the
    /// next event would fire after `horizon` (events at exactly `horizon`
    /// are processed; later ones are left queued).
    pub fn run_until<F>(&mut self, horizon: SimTime, handler: &mut F) -> u64
    where
        F: FnMut(&mut SimContext<E>, E),
    {
        self.run_until_observed(horizon, handler, &mut |_, _, _: &E| {})
    }

    /// Like [`Self::run`], additionally calling `observer` with
    /// `(time, dispatch index, payload)` immediately before each event
    /// is handled.  The observer sees the exact dispatch order — the
    /// instrumentation hook behind event-trace regression tests and the
    /// protocol drivers the model checker compares against.
    pub fn run_observed<F, O>(&mut self, mut handler: F, mut observer: O) -> u64
    where
        F: FnMut(&mut SimContext<E>, E),
        O: FnMut(SimTime, u64, &E),
    {
        self.run_until_observed(SimTime::MAX, &mut handler, &mut observer)
    }

    /// The fully general run loop: bounded horizon plus dispatch
    /// observer.  All other run methods delegate here.
    pub fn run_until_observed<F, O>(
        &mut self,
        horizon: SimTime,
        handler: &mut F,
        observer: &mut O,
    ) -> u64
    where
        F: FnMut(&mut SimContext<E>, E),
        O: FnMut(SimTime, u64, &E),
    {
        let start = self.ctx.processed;
        self.ctx.stopped = false;
        while let Some(head) = self.ctx.queue.peek() {
            if head.due > horizon {
                break;
            }
            // The peek above guarantees the queue is non-empty, so the
            // `else` arm can never run; it exists to keep this loop
            // panic-free without an `expect`.
            let Some(ev) = self.ctx.queue.pop() else {
                break;
            };
            debug_assert!(ev.due >= self.ctx.now, "time went backwards");
            self.ctx.now = ev.due;
            observer(ev.due, self.ctx.processed, &ev.payload);
            self.ctx.processed += 1;
            handler(&mut self.ctx, ev.payload);
            if self.ctx.stopped {
                break;
            }
        }
        // Advancing the clock to the horizon when we exhausted all events
        // lets callers compose consecutive bounded runs.
        if self.ctx.queue.is_empty() && horizon != SimTime::MAX && self.ctx.now < horizon {
            self.ctx.now = horizon;
        }
        self.ctx.processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut sim = Simulator::new();
        sim.context().schedule_at(SimTime::from_secs(3), 3u32);
        sim.context().schedule_at(SimTime::from_secs(1), 1u32);
        sim.context().schedule_at(SimTime::from_secs(2), 2u32);
        let mut seen = Vec::new();
        sim.run(|ctx, e| {
            seen.push((ctx.now().as_nanos() / 1_000_000_000, e));
        });
        assert_eq!(seen, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn ties_fire_fifo() {
        let mut sim = Simulator::new();
        for i in 0..100u32 {
            sim.context().schedule_at(SimTime::from_secs(5), i);
        }
        let mut seen = Vec::new();
        sim.run(|_, e| seen.push(e));
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut sim = Simulator::new();
        sim.context().schedule_at(SimTime::ZERO, 0u32);
        let mut count = 0;
        sim.run(|ctx, e| {
            count += 1;
            if e < 10 {
                ctx.schedule_after(SimDuration::from_secs(1), e + 1);
            }
        });
        assert_eq!(count, 11);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn stop_halts_run() {
        let mut sim = Simulator::new();
        for i in 0..10u32 {
            sim.context().schedule_at(SimTime::from_secs(i as u64), i);
        }
        let mut seen = Vec::new();
        sim.run(|ctx, e| {
            seen.push(e);
            if e == 4 {
                ctx.stop();
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.context().pending(), 5);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulator::new();
        for i in 0..10u64 {
            sim.context().schedule_at(SimTime::from_secs(i), i);
        }
        let mut seen = Vec::new();
        let n = sim.run_until(SimTime::from_secs(4), &mut |_, e: u64| seen.push(e));
        assert_eq!(n, 5); // events at t=0..=4 inclusive
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // Continue to completion.
        sim.run(|_, e| seen.push(e));
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn empty_run_until_advances_clock() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.run_until(SimTime::from_secs(100), &mut |_, _| {});
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulator::new();
        sim.context().schedule_at(SimTime::from_secs(5), ());
        sim.run(|ctx, _| {
            ctx.schedule_at(SimTime::from_secs(1), ());
        });
    }

    #[test]
    fn observer_sees_dispatch_order() {
        let mut sim = Simulator::new();
        sim.context().schedule_at(SimTime::from_secs(2), 20u32);
        sim.context().schedule_at(SimTime::from_secs(1), 10u32);
        let mut observed = Vec::new();
        let mut handled = Vec::new();
        sim.run_observed(
            |ctx, e| {
                handled.push(e);
                if e == 10 {
                    ctx.schedule_after(SimDuration::from_secs(5), 30u32);
                }
            },
            |now, idx, e: &u32| observed.push((now.as_nanos() / 1_000_000_000, idx, *e)),
        );
        assert_eq!(handled, vec![10, 20, 30]);
        assert_eq!(observed, vec![(1, 0, 10), (2, 1, 20), (6, 2, 30)]);
    }

    #[test]
    fn processed_counter() {
        let mut sim = Simulator::new();
        for i in 0..7u32 {
            sim.context().schedule_at(SimTime::from_secs(i as u64), i);
        }
        let n = sim.run(|_, _| {});
        assert_eq!(n, 7);
        assert_eq!(sim.context().processed(), 7);
    }
}
