//! A deadline timer queue — the wake-on-deadline substrate.
//!
//! The protocol engines (announce schedules, cache expiry, clash
//! defences) are inherently event-driven: each piece of state has a
//! single next deadline, and nothing at all needs to happen between
//! deadlines.  [`TimerQueue`] gives them an O(log n) schedule /
//! O(1) next-deadline / amortised-O(log n) fire structure with
//! cancellation tokens, replacing the O(n) walk-every-object-per-poll
//! pattern the first reproduction used.
//!
//! Determinism rules (the event-trace regression tests depend on them):
//!
//! * timers fire strictly in deadline order;
//! * two timers at the *same* deadline fire in schedule order (FIFO) —
//!   the token counter doubles as the tie-break sequence;
//! * cancellation is lazy: a cancelled entry stays in the heap until it
//!   reaches the top, where it is discarded silently.  Lazy entries can
//!   make [`TimerQueue::peek_deadline`] conservative (early), never
//!   late — an early wake finds nothing due and is a no-op, so traces
//!   are unaffected.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// Handle to a scheduled timer, used to cancel it.  Tokens are unique
/// for the lifetime of the queue (a `u64` counter; it does not wrap in
/// any feasible run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(u64);

struct TimerEntry<K> {
    due: SimTime,
    token: u64,
    key: K,
}

impl<K> PartialEq for TimerEntry<K> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.token == other.token
    }
}
impl<K> Eq for TimerEntry<K> {}
impl<K> PartialOrd for TimerEntry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K> Ord for TimerEntry<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest deadline pops
        // first, FIFO (lowest token) among equals.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.token.cmp(&self.token))
    }
}

/// A cancellable deadline queue over keys of type `K`.
pub struct TimerQueue<K> {
    heap: BinaryHeap<TimerEntry<K>>,
    live: HashSet<u64>,
    next_token: u64,
}

impl<K> std::fmt::Debug for TimerQueue<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerQueue")
            .field("len", &self.live.len())
            .field("heap", &self.heap.len())
            .finish()
    }
}

impl<K> Default for TimerQueue<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> TimerQueue<K> {
    /// An empty queue.
    pub fn new() -> Self {
        TimerQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            next_token: 0,
        }
    }

    /// Number of live (scheduled, not cancelled, not fired) timers.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no live timers remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Schedule `key` to fire at `due`.  O(log n).
    // lint:allow(wire-taint): the heap holds one entry per armed timer and fires/cancels evict it; callers own deadline validation (the directory clamps wire intervals at admission)
    pub fn schedule(&mut self, due: SimTime, key: K) -> TimerToken {
        let token = self.next_token;
        self.next_token += 1;
        self.live.insert(token);
        self.heap.push(TimerEntry { due, token, key });
        TimerToken(token)
    }

    /// Cancel a scheduled timer.  Returns whether it was still pending
    /// (false if it already fired or was already cancelled).  O(1); the
    /// heap entry is discarded lazily when it surfaces.
    pub fn cancel(&mut self, token: TimerToken) -> bool {
        self.live.remove(&token.0)
    }

    /// The earliest live deadline, pruning any cancelled entries that
    /// have surfaced at the top.  Exact, needs `&mut self`.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        loop {
            let head = self.heap.peek()?;
            if self.live.contains(&head.token) {
                return Some(head.due);
            }
            self.heap.pop();
        }
    }

    /// The earliest heap deadline *without* pruning.  May be earlier
    /// than the true next deadline when a cancelled entry still sits at
    /// the top (never later); use where only `&self` is available and a
    /// conservative wake is acceptable.
    pub fn peek_deadline(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.due)
    }

    /// Pop the earliest live timer with `due <= now`, if any, skipping
    /// cancelled entries.  Returns the deadline it was scheduled for and
    /// its key.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, K)> {
        loop {
            let head = self.heap.peek()?;
            if head.due > now {
                return None;
            }
            // `peek` above guarantees the pop succeeds; `?` keeps this
            // loop panic-free without an `expect`.
            let entry = self.heap.pop()?;
            if self.live.remove(&entry.token) {
                return Some((entry.due, entry.key));
            }
        }
    }

    /// Batch-drain every live timer with `due <= now` into `out`, in
    /// fire order (deadline, then FIFO).  One wake pays one pass over
    /// the due prefix instead of a call per timer; the caller reuses
    /// `out` so steady-state wakes allocate nothing.
    pub fn drain_due(&mut self, now: SimTime, out: &mut Vec<(SimTime, K)>) {
        while let Some(fired) = self.pop_due(now) {
            out.push(fired);
        }
    }

    /// Schedule `key` at `due` under an externally-minted `token`.
    /// [`ShardedTimerQueue`] uses this to keep one global FIFO sequence
    /// across shards, so cross-shard ties at equal deadlines fire in
    /// schedule order exactly as a single queue would.
    fn schedule_with_token(&mut self, due: SimTime, key: K, token: u64) {
        self.next_token = self.next_token.max(token + 1);
        self.live.insert(token);
        self.heap.push(TimerEntry { due, token, key });
    }

    /// The `(due, token)` of the earliest live entry, pruning cancelled
    /// heads.  The token lets a multi-shard scheduler order equal
    /// deadlines globally.
    fn peek_live(&mut self) -> Option<(SimTime, u64)> {
        loop {
            let head = self.heap.peek()?;
            if self.live.contains(&head.token) {
                return Some((head.due, head.token));
            }
            self.heap.pop();
        }
    }

    /// Drop every timer (live and cancelled).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
    }
}

/// Handle to a timer scheduled on a [`ShardedTimerQueue`]: the shard it
/// lives in plus its per-shard token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardToken {
    shard: u32,
    token: TimerToken,
}

impl ShardToken {
    /// The shard this timer was scheduled into.
    pub fn shard(&self) -> usize {
        self.shard as usize
    }
}

/// A [`TimerQueue`] split into independent shards (the directory keys
/// them by TTL partition band) that still fires in one global
/// deterministic order.
///
/// Each shard owns its own heap, so churn in one band — a burst of
/// announce reschedules for low-TTL sessions, say — never touches
/// another band's heap.  Tokens are minted from a single queue-wide
/// counter and threaded through [`TimerQueue::schedule_with_token`], so
/// the cross-shard fire order at equal deadlines is exactly the FIFO
/// order a single unsharded queue would produce: the determinism
/// contract (deadline order, then schedule order) is preserved
/// verbatim.
pub struct ShardedTimerQueue<K> {
    // lint:bounded: fixed at construction (TTL bands + control shard, ≤ 5); nothing ever pushes a new shard
    shards: Vec<TimerQueue<K>>,
    next_token: u64,
}

impl<K> std::fmt::Debug for ShardedTimerQueue<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTimerQueue")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

impl<K> ShardedTimerQueue<K> {
    /// A queue with `shards` independent heaps (at least one).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedTimerQueue {
            shards: (0..shards).map(|_| TimerQueue::new()).collect(),
            next_token: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live timers across every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(TimerQueue::len).sum()
    }

    /// Whether no live timers remain in any shard.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(TimerQueue::is_empty)
    }

    /// Live timers in one shard (0 for an out-of-range index).
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards.get(shard).map_or(0, TimerQueue::len)
    }

    /// Schedule `key` at `due` in `shard` (clamped to the last shard),
    /// minting the token from the queue-wide FIFO sequence.
    // lint:allow(wire-taint): the per-shard heap holds one entry per armed timer and fires/cancels evict it; callers own deadline validation (the directory clamps wire intervals at admission)
    pub fn schedule(&mut self, shard: usize, due: SimTime, key: K) -> ShardToken {
        let shard = shard.min(self.shards.len().saturating_sub(1));
        let token = self.next_token;
        self.next_token += 1;
        if let Some(q) = self.shards.get_mut(shard) {
            q.schedule_with_token(due, key, token);
        }
        ShardToken {
            shard: shard as u32,
            token: TimerToken(token),
        }
    }

    /// Cancel a scheduled timer; see [`TimerQueue::cancel`].
    pub fn cancel(&mut self, token: ShardToken) -> bool {
        self.shards
            .get_mut(token.shard as usize)
            .is_some_and(|q| q.cancel(token.token))
    }

    /// The shard index holding the globally-earliest live `(due,
    /// token)`, pruning cancelled heads as a side effect.
    fn earliest_shard(&mut self) -> Option<usize> {
        let mut best: Option<((SimTime, u64), usize)> = None;
        for (i, q) in self.shards.iter_mut().enumerate() {
            if let Some(head) = q.peek_live() {
                if best.is_none_or(|(b, _)| head < b) {
                    best = Some((head, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    /// The earliest live deadline across all shards.  Exact.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        let shard = self.earliest_shard()?;
        self.shards.get_mut(shard)?.next_deadline()
    }

    /// Conservative (possibly early, never late) earliest deadline; see
    /// [`TimerQueue::peek_deadline`].
    pub fn peek_deadline(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(TimerQueue::peek_deadline)
            .min()
    }

    /// Pop the globally-earliest live timer with `due <= now`, in the
    /// same (deadline, schedule) order a single queue would fire.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, K)> {
        let shard = self.earliest_shard()?;
        self.shards.get_mut(shard)?.pop_due(now)
    }

    /// Batch-drain every due timer across all shards into `out`, in
    /// global fire order.  The per-wake analogue of
    /// [`TimerQueue::drain_due`].
    pub fn drain_due(&mut self, now: SimTime, out: &mut Vec<(SimTime, K)>) {
        while let Some(fired) = self.pop_due(now) {
            out.push(fired);
        }
    }

    /// Drop every timer in every shard.  The token counter survives, so
    /// FIFO order stays globally consistent across clears.
    pub fn clear(&mut self) {
        for q in &mut self.shards {
            q.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn fires_in_deadline_order() {
        let mut q = TimerQueue::new();
        q.schedule(t(3), "c");
        q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert_eq!(q.next_deadline(), Some(t(1)));
        let mut fired = Vec::new();
        while let Some((_, k)) = q.pop_due(t(10)) {
            fired.push(k);
        }
        assert_eq!(fired, vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_deadlines_fire_fifo() {
        let mut q = TimerQueue::new();
        for i in 0..100u32 {
            q.schedule(t(5), i);
        }
        let mut fired = Vec::new();
        while let Some((_, k)) = q.pop_due(t(5)) {
            fired.push(k);
        }
        assert_eq!(fired, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = TimerQueue::new();
        q.schedule(t(5), ());
        assert_eq!(q.pop_due(t(4)), None);
        assert_eq!(q.pop_due(t(5)), Some((t(5), ())));
        assert_eq!(q.pop_due(t(100)), None);
    }

    #[test]
    fn cancel_prevents_fire() {
        let mut q = TimerQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        // The cancelled entry still distorts the unpruned peek...
        assert_eq!(q.peek_deadline(), Some(t(1)));
        // ...but the pruning accessor and pop skip it.
        assert_eq!(q.next_deadline(), Some(t(2)));
        assert_eq!(q.pop_due(t(10)), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = TimerQueue::new();
        let tok = q.schedule(t(1), ());
        assert_eq!(q.pop_due(t(1)), Some((t(1), ())));
        assert!(!q.cancel(tok));
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = TimerQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_deadline(), None);
        assert_eq!(q.pop_due(t(100)), None);
        // The token counter keeps advancing across clears, so FIFO order
        // stays globally consistent.
        q.schedule(t(3), 3);
        assert_eq!(q.pop_due(t(3)), Some((t(3), 3)));
    }

    #[test]
    fn stale_token_after_clear_cannot_cancel_successor() {
        // A token captured before `clear` must not cancel a timer
        // scheduled afterwards, even though both sat at heap position 0.
        let mut q = TimerQueue::new();
        let stale = q.schedule(t(1), "old");
        q.clear();
        let fresh = q.schedule(t(1), "new");
        assert_ne!(stale, fresh, "tokens must stay unique across clear");
        assert!(!q.cancel(stale), "stale token must be inert");
        assert_eq!(q.len(), 1, "successor survives the stale cancel");
        assert_eq!(q.pop_due(t(1)), Some((t(1), "new")));
    }

    #[test]
    fn reschedule_then_cancel_stale_token_keeps_replacement() {
        // The engine pattern: cancel + reschedule, then a late cancel
        // arrives bearing the ORIGINAL token (e.g. bookkeeping raced a
        // fire).  The replacement must be unaffected.
        let mut q = TimerQueue::new();
        let first = q.schedule(t(5), "announce");
        assert!(q.cancel(first));
        let second = q.schedule(t(3), "announce");
        assert!(!q.cancel(first), "already-cancelled token is spent");
        assert_eq!(q.next_deadline(), Some(t(3)));
        assert_eq!(q.pop_due(t(3)), Some((t(3), "announce")));
        assert!(!q.cancel(second), "cancel-after-fire reports false");
        assert!(q.is_empty());
    }

    #[test]
    fn all_pending_cancelled_drains_heap_lazily() {
        // With every entry cancelled, the lazy heap still holds them —
        // the pruning accessor must drain it to emptiness, the
        // conservative peek may still report a (stale) early deadline,
        // and pop_due must find nothing at any horizon.
        let mut q = TimerQueue::new();
        let tokens: Vec<TimerToken> = (0..10u32)
            .map(|i| q.schedule(t(1 + u64::from(i)), i))
            .collect();
        for tok in tokens {
            assert!(q.cancel(tok));
        }
        assert!(q.is_empty(), "no live timers remain");
        // peek is conservative: it may surface a cancelled deadline...
        assert_eq!(q.peek_deadline(), Some(t(1)));
        // ...pop_due skips every cancelled entry without firing any.
        assert_eq!(q.pop_due(t(100)), None);
        // next_deadline prunes to the true answer: nothing.
        assert_eq!(q.next_deadline(), None);
        assert_eq!(q.peek_deadline(), None, "prune emptied the heap");
        // The queue remains usable afterwards.
        q.schedule(t(50), 99);
        assert_eq!(q.next_deadline(), Some(t(50)));
        assert_eq!(q.pop_due(t(50)), Some((t(50), 99)));
    }

    #[test]
    fn cancelled_head_does_not_block_later_live_timer() {
        // pop_due at a horizon covering only the cancelled head must
        // not fire the later live timer, and must not lose it either.
        let mut q = TimerQueue::new();
        let head = q.schedule(t(1), "dead");
        q.schedule(t(10), "live");
        q.cancel(head);
        assert_eq!(q.pop_due(t(5)), None, "only the cancelled head is due");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(t(10)), Some((t(10), "live")));
    }

    #[test]
    fn interleaved_schedule_and_fire() {
        let mut q = TimerQueue::new();
        q.schedule(t(10), "late");
        q.schedule(t(1), "early");
        assert_eq!(q.pop_due(t(1)).map(|(_, k)| k), Some("early"));
        q.schedule(t(5), "mid");
        assert_eq!(q.next_deadline(), Some(t(5)));
        assert_eq!(q.pop_due(t(20)).map(|(_, k)| k), Some("mid"));
        assert_eq!(q.pop_due(t(20)).map(|(_, k)| k), Some("late"));
    }

    #[test]
    fn drain_due_matches_pop_loop() {
        let mut a = TimerQueue::new();
        let mut b = TimerQueue::new();
        for (due, k) in [(3u64, "c"), (1, "a"), (3, "d"), (2, "b"), (9, "z")] {
            a.schedule(t(due), k);
            b.schedule(t(due), k);
        }
        let mut batch = Vec::new();
        a.drain_due(t(3), &mut batch);
        let mut single = Vec::new();
        while let Some(fired) = b.pop_due(t(3)) {
            single.push(fired);
        }
        assert_eq!(batch, single);
        assert_eq!(batch.len(), 4, "the t=9 timer is not yet due");
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn sharded_queue_fires_in_single_queue_order() {
        // Interleave schedules across shards with colliding deadlines;
        // the sharded drain must reproduce the exact fire order of an
        // unsharded queue fed the same sequence.
        let mut sharded = ShardedTimerQueue::new(4);
        let mut single = TimerQueue::new();
        let plan = [
            (2usize, 5u64, 0u32),
            (0, 5, 1),
            (3, 1, 2),
            (2, 5, 3),
            (1, 2, 4),
            (0, 1, 5),
            (3, 5, 6),
            (1, 1, 7),
        ];
        for &(shard, due, key) in &plan {
            sharded.schedule(shard, t(due), key);
            single.schedule(t(due), key);
        }
        let mut a = Vec::new();
        sharded.drain_due(t(10), &mut a);
        let mut b = Vec::new();
        single.drain_due(t(10), &mut b);
        assert_eq!(a, b, "cross-shard FIFO diverged from the single queue");
        assert!(sharded.is_empty());
    }

    #[test]
    fn sharded_cancel_and_deadlines() {
        let mut q = ShardedTimerQueue::new(3);
        let a = q.schedule(0, t(1), "a");
        let b = q.schedule(1, t(2), "b");
        q.schedule(2, t(3), "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.shard_len(1), 1);
        assert_eq!(a.shard(), 0);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.peek_deadline(), Some(t(1)), "conservative peek");
        assert_eq!(q.next_deadline(), Some(t(2)), "pruned deadline");
        assert_eq!(q.pop_due(t(10)), Some((t(2), "b")));
        assert!(!q.cancel(b), "cancel-after-fire reports false");
        assert_eq!(q.pop_due(t(10)), Some((t(3), "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_out_of_range_shard_clamps() {
        let mut q = ShardedTimerQueue::new(2);
        let tok = q.schedule(99, t(1), "x");
        assert_eq!(tok.shard(), 1, "over-range shard clamps to the last");
        assert_eq!(q.pop_due(t(1)), Some((t(1), "x")));
    }

    #[test]
    fn sharded_clear_keeps_token_sequence() {
        let mut q = ShardedTimerQueue::new(2);
        let stale = q.schedule(0, t(1), 1u32);
        q.clear();
        assert!(q.is_empty());
        let fresh = q.schedule(0, t(1), 2u32);
        assert_ne!(stale, fresh, "tokens must stay unique across clear");
        assert!(!q.cancel(stale), "stale token must be inert");
        assert_eq!(q.pop_due(t(1)), Some((t(1), 2u32)));
    }
}
