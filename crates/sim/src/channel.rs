//! Link/channel impairment models: propagation delay and packet loss.
//!
//! The paper's analyses hinge on two channel parameters: the mean
//! end-to-end propagation delay (200 ms across the 1998 Mbone) and the
//! mean packet-loss rate (2%).  Section 2.3 combines them into an
//! *effective* announcement delay: a lost announcement is not seen until
//! the next retransmission, so with a repeat interval of ten minutes the
//! mean effective delay is `(1-p)·d + p·(repeat interval)` ≈ 12 s.
//!
//! These models are deliberately simple — independent Bernoulli loss and
//! additive jitter — matching the paper's assumptions rather than trying
//! to model congestion dynamics the paper does not consider.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Propagation-delay model for a link or end-to-end path.
#[derive(Debug, Clone, PartialEq)]
pub enum DelayModel {
    /// Fixed delay.
    Constant(SimDuration),
    /// Fixed base plus a uniform random addition in `[0, jitter)`,
    /// resampled per packet — the "delay=distance+random" configuration of
    /// the paper's request–response simulations (Fig 15 C/D).
    Jittered {
        /// Deterministic component (≈ distance).
        base: SimDuration,
        /// Upper bound of the uniform per-packet jitter.
        jitter: SimDuration,
    },
    /// Exponentially distributed delay with the given mean (used in
    /// stress tests; not a paper configuration).
    Exponential(SimDuration),
}

impl DelayModel {
    /// Sample a packet delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Jittered { base, jitter } => {
                if jitter.is_zero() {
                    base
                } else {
                    base + SimDuration::from_nanos(rng.below(jitter.as_nanos().max(1)))
                }
            }
            DelayModel::Exponential(mean) => {
                SimDuration::from_secs_f64(rng.exp(mean.as_secs_f64()))
            }
        }
    }

    /// The mean delay of the model.
    pub fn mean(&self) -> SimDuration {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Jittered { base, jitter } => base + jitter / 2,
            DelayModel::Exponential(mean) => mean,
        }
    }
}

/// Packet-loss model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModel {
    /// Independent per-packet drop probability in `[0, 1]`.
    pub drop_probability: f64,
}

impl LossModel {
    /// A lossless channel.
    pub const NONE: LossModel = LossModel {
        drop_probability: 0.0,
    };

    /// The paper's default 2% loss.
    pub const MBONE_DEFAULT: LossModel = LossModel {
        drop_probability: 0.02,
    };

    /// Create a model with the given drop probability (clamped to \[0,1\]).
    pub fn new(p: f64) -> Self {
        LossModel {
            drop_probability: p.clamp(0.0, 1.0),
        }
    }

    /// Decide whether a packet is dropped.
    pub fn drops(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.drop_probability)
    }
}

/// A channel combining loss and delay: the outcome of one transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    /// Loss applied before delay is even sampled.
    pub loss: LossModel,
    /// Delay applied to delivered packets.
    pub delay: DelayModel,
}

/// Result of offering one packet to a [`Channel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transmission {
    /// Delivered after the contained delay.
    Delivered(SimDuration),
    /// Dropped by the loss process.
    Lost,
}

impl Channel {
    /// A perfect channel with the given constant delay.
    pub fn perfect(delay: SimDuration) -> Self {
        Channel {
            loss: LossModel::NONE,
            delay: DelayModel::Constant(delay),
        }
    }

    /// The paper's Section 2.3 operating point: 200 ms delay, 2% loss.
    pub fn mbone_default() -> Self {
        Channel {
            loss: LossModel::MBONE_DEFAULT,
            delay: DelayModel::Constant(SimDuration::from_millis(200)),
        }
    }

    /// Offer one packet to the channel.
    pub fn transmit(&self, rng: &mut SimRng) -> Transmission {
        if self.loss.drops(rng) {
            Transmission::Lost
        } else {
            Transmission::Delivered(self.delay.sample(rng))
        }
    }

    /// Mean *effective* delay when lost packets are recovered by the next
    /// periodic retransmission — Section 2.3's
    /// `(1-p)·delay + p·repeat_interval` approximation.
    ///
    /// With the paper's numbers (200 ms, 2% loss, 600 s repeat) this is
    /// ≈ 12.2 s, which the paper rounds to 12 s.
    pub fn effective_delay(&self, repeat_interval: SimDuration) -> SimDuration {
        let p = self.loss.drop_probability;
        self.delay.mean().mul_f64(1.0 - p) + repeat_interval.mul_f64(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_delay() {
        let mut rng = SimRng::new(1);
        let m = DelayModel::Constant(SimDuration::from_millis(200));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(200));
        }
        assert_eq!(m.mean(), SimDuration::from_millis(200));
    }

    #[test]
    fn jittered_delay_within_bounds() {
        let mut rng = SimRng::new(2);
        let base = SimDuration::from_millis(100);
        let jitter = SimDuration::from_millis(50);
        let m = DelayModel::Jittered { base, jitter };
        for _ in 0..10_000 {
            let d = m.sample(&mut rng);
            assert!(d >= base && d < base + jitter);
        }
        assert_eq!(m.mean(), SimDuration::from_millis(125));
    }

    #[test]
    fn jitter_zero_degenerates_to_constant() {
        let mut rng = SimRng::new(3);
        let m = DelayModel::Jittered {
            base: SimDuration::from_millis(10),
            jitter: SimDuration::ZERO,
        };
        assert_eq!(m.sample(&mut rng), SimDuration::from_millis(10));
    }

    #[test]
    fn loss_rate_statistics() {
        let mut rng = SimRng::new(4);
        let loss = LossModel::new(0.02);
        let n = 200_000;
        let dropped = (0..n).filter(|_| loss.drops(&mut rng)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.02).abs() < 0.002, "rate {rate}");
    }

    #[test]
    fn loss_clamps() {
        assert_eq!(LossModel::new(-0.5).drop_probability, 0.0);
        assert_eq!(LossModel::new(1.5).drop_probability, 1.0);
    }

    #[test]
    fn effective_delay_matches_paper_section_2_3() {
        // (0.98*0.2)+(0.02*600) = 12.196 s; the paper quotes "about 12 s".
        let ch = Channel::mbone_default();
        let eff = ch.effective_delay(SimDuration::from_mins(10));
        let secs = eff.as_secs_f64();
        assert!((secs - 12.196).abs() < 0.01, "effective delay {secs}");
    }

    #[test]
    fn effective_delay_with_fast_repeat() {
        // Section 2.3 again: repeating 5 s after the first announcement
        // gives a mean delay of about 0.3 s.
        let ch = Channel::mbone_default();
        let eff = ch.effective_delay(SimDuration::from_secs(5));
        let secs = eff.as_secs_f64();
        assert!((secs - 0.296).abs() < 0.01, "effective delay {secs}");
    }

    #[test]
    fn perfect_channel_never_drops() {
        let mut rng = SimRng::new(5);
        let ch = Channel::perfect(SimDuration::from_millis(1));
        for _ in 0..1000 {
            assert_eq!(
                ch.transmit(&mut rng),
                Transmission::Delivered(SimDuration::from_millis(1))
            );
        }
    }

    #[test]
    fn exponential_delay_mean() {
        let mut rng = SimRng::new(6);
        let m = DelayModel::Exponential(SimDuration::from_millis(100));
        let n = 100_000;
        let total: f64 = (0..n).map(|_| m.sample(&mut rng).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.1).abs() < 0.005, "mean {mean}");
    }

    /// Sample mean and (population) variance of `n` draws.
    fn mean_var(n: usize, mut draw: impl FnMut() -> f64) -> (f64, f64) {
        let samples: Vec<f64> = (0..n).map(|_| draw()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn exponential_delay_variance() {
        // Exp(mean) has variance = mean²; with mean 100 ms that is 0.01 s².
        let mut rng = SimRng::new(60);
        let m = DelayModel::Exponential(SimDuration::from_millis(100));
        let (mean, var) = mean_var(200_000, || m.sample(&mut rng).as_secs_f64());
        assert!((mean - 0.1).abs() < 0.005, "mean {mean}");
        assert!((var - 0.01).abs() < 0.001, "variance {var}");
    }

    #[test]
    fn jittered_delay_variance() {
        // Uniform jitter in [0, j) has variance j²/12; base adds none.
        let mut rng = SimRng::new(61);
        let jitter = 0.120; // 120 ms
        let m = DelayModel::Jittered {
            base: SimDuration::from_millis(80),
            jitter: SimDuration::from_millis(120),
        };
        let (mean, var) = mean_var(200_000, || m.sample(&mut rng).as_secs_f64());
        assert!((mean - 0.140).abs() < 0.002, "mean {mean}");
        let expected = jitter * jitter / 12.0;
        assert!((var - expected).abs() < expected * 0.05, "variance {var}");
    }

    #[test]
    fn loss_indicator_variance() {
        // A Bernoulli(p) indicator has variance p(1-p).
        let mut rng = SimRng::new(62);
        let loss = LossModel::new(0.02);
        let (mean, var) = mean_var(200_000, || if loss.drops(&mut rng) { 1.0 } else { 0.0 });
        assert!((mean - 0.02).abs() < 0.002, "rate {mean}");
        let expected = 0.02 * 0.98;
        assert!((var - expected).abs() < 0.002, "variance {var}");
    }

    #[test]
    fn exponential_seeded_reproducibility() {
        // Identical seeds reproduce the identical sample series — the
        // property every chaos-report determinism guarantee rests on.
        let m = DelayModel::Exponential(SimDuration::from_millis(200));
        let mut a = SimRng::new(63);
        let mut b = SimRng::new(63);
        for _ in 0..1_000 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }
}
