//! Deterministic random number generation.
//!
//! All the paper's simulations are Monte-Carlo experiments, so exact
//! reproducibility matters: a figure regenerated from the same seed must
//! produce the same series on every platform and with every future
//! version of our dependencies.  We therefore implement the generator
//! ourselves (xoshiro256++, a well-studied small generator) instead of
//! relying on `rand`'s unspecified `SmallRng` algorithm.  The type still
//! implements [`rand::RngCore`] so it composes with `rand` distributions
//! where convenient.

use rand::RngCore;

/// A deterministic xoshiro256++ generator.
///
/// Seeding uses SplitMix64 on the user seed, following the generator
/// authors' recommendation, so any `u64` (including 0) is a valid seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 to spread the seed across the 256-bit state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    // lint:allow(panic-reach): fixed [u64; 4] xoshiro state indexed by constant in-bounds indices
    pub fn next_u64_raw(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.  `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    // lint:sanitizer(wire-taint): returns a fresh pseudo-random draw in [0, bound); a wire-influenced bound caps the range but cannot choose the value
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64_raw();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64_raw();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` index in `[0, len)` — convenient for slices.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    // lint:allow(panic-reach): index() yields a value strictly below items.len(); non-emptiness is the asserted contract
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.index(items.len())]
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed sample with the given mean.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        // Inverse CDF; (1 - u) avoids ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Split off an independent child generator (for giving each simulated
    /// node its own stream while keeping the run reproducible).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64_raw())
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    // lint:allow(panic-reach): the remainder slice is shorter than the 8-byte word it copies from
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_value_regression() {
        // Pin the output stream so accidental algorithm changes are caught.
        let mut r = SimRng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64_raw()).collect();
        let mut r2 = SimRng::new(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64_raw()).collect();
        assert_eq!(first, again);
        // All four values distinct (sanity, not a randomness test).
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = SimRng::new(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expect 10 000 each; allow ±5%.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_inclusive_endpoints_reachable() {
        let mut r = SimRng::new(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1_000 {
            match r.range_inclusive(3, 5) {
                3 => saw_lo = true,
                5 => saw_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn exp_mean_close() {
        let mut r = SimRng::new(17);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(19);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(23);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64)
            .filter(|_| c1.next_u64_raw() == c2.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SimRng::new(29);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(31);
        for _ in 0..10_000 {
            let x = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }
}
