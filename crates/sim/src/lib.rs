//! # sdalloc-sim — discrete-event simulation engine
//!
//! The substrate beneath every experiment in this workspace: a
//! deterministic discrete-event simulator with virtual time, a
//! reproducible random number generator, channel impairment models
//! (loss, delay, jitter) and the statistics helpers the paper's
//! methodology calls for (median filtering, clash-probability crossing
//! detection, histograms).
//!
//! Everything is seeded and integer-timed, so any figure in the paper
//! reproduction can be regenerated bit-for-bit from its seed.
//!
//! ```
//! use sdalloc_sim::{Simulator, SimTime, SimDuration};
//!
//! let mut sim = Simulator::new();
//! sim.context().schedule_at(SimTime::from_secs(1), "hello");
//! let mut log = Vec::new();
//! sim.run(|ctx, msg| {
//!     log.push((ctx.now(), msg));
//!     if msg == "hello" {
//!         ctx.schedule_after(SimDuration::from_secs(2), "world");
//!     }
//! });
//! assert_eq!(log.len(), 2);
//! assert_eq!(log[1].0, SimTime::from_secs(3));
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod engine;
pub mod faults;
pub mod rng;
pub mod stats;
pub mod suppression;
pub mod time;
pub mod timer;

pub use channel::{Channel, DelayModel, LossModel, Transmission};
pub use engine::{SimContext, Simulator};
pub use faults::{
    CorruptWindow, CorruptionMode, CrashEvent, FaultPlan, LossWindow, PartitionWindow, Storm,
};
pub use rng::SimRng;
pub use stats::{first_crossing, median, median_filter, quantile, Histogram, Summary};
pub use time::{SimDuration, SimTime};
pub use timer::{ShardToken, ShardedTimerQueue, TimerQueue, TimerToken};
