//! The agent driver and the threaded multi-agent runtime.
//!
//! [`AgentDriver`] owns one [`SessionDirectory`] plus its transport and
//! pumps the protocol: sleep until the directory's `next_deadline` or a
//! packet arrives, dispatch timers/packets, and publish snapshots at the
//! configured cadence.  The same driver runs in three modes:
//!
//! * **threaded** — [`Runtime::spawn`] gives each driver its own thread
//!   plus a command channel, the production shape;
//! * **stepped** — call [`AgentDriver::step`] from your own loop;
//! * **deterministic** — [`AgentDriver::run_deterministic_until`] over a
//!   [`VirtualClock`] and a quiet loopback bus replays the exact
//!   wake-on-deadline discipline of the discrete-event testbed, which is
//!   what the differential fingerprint tests rely on.
//!
//! The driver keeps its `runtime.*` telemetry in its *own*
//! [`Telemetry`] instance (same node/seed identity as the directory's):
//! the directory's telemetry stream stays byte-comparable with the
//! simulator's, while the driver layer still gets per-thread counters.

use std::io;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use sdalloc_core::Allocator;
use sdalloc_sap::net::SapTransport;
use sdalloc_sap::{CreateError, DirectoryConfig, Media, SessionDirectory};
use sdalloc_sim::{FaultPlan, SimRng, SimTime};
use sdalloc_telemetry::{CounterId, Telemetry};

use crate::clock::{Clock, VirtualClock};
use crate::snapshot::{SnapshotCadence, SnapshotHandle, SnapshotPublisher, SnapshotStats};

/// Pump-loop knobs.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Shortest listen budget per step (keeps a deadline-crowded driver
    /// from busy-spinning on the socket).
    pub min_wait: Duration,
    /// Listen budget when nothing is due (also the command-latency
    /// ceiling for a threaded agent).
    pub idle_wait: Duration,
    /// After a blocking receive, drain at most this many further queued
    /// packets without waiting before re-checking timers.
    pub drain_batch: usize,
    /// Snapshot publication cadence.
    pub cadence: SnapshotCadence,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            min_wait: Duration::from_millis(1),
            idle_wait: Duration::from_millis(50),
            drain_batch: 64,
            cadence: SnapshotCadence::default(),
        }
    }
}

/// Everything a worker thread hands back when it exits.
#[derive(Debug)]
pub struct AgentExit {
    /// The agent's node index.
    pub node: u32,
    /// Sessions cached at exit.
    pub cached_sessions: usize,
    /// The directory's telemetry snapshot (protocol counters).
    pub directory_telemetry: String,
    /// The driver's own `runtime.*` telemetry snapshot.
    pub runtime_telemetry: String,
    /// Flight-recorder post-mortem, always captured at exit.
    pub flight_dump: String,
    /// Snapshot publication counters.
    pub snapshot_stats: SnapshotStats,
    /// The I/O error that killed the pump, if it did not exit cleanly.
    pub error: Option<String>,
}

/// One directory agent bound to a transport and a clock.
pub struct AgentDriver<T: SapTransport> {
    node: u32,
    cfg: DriverConfig,
    directory: SessionDirectory,
    transport: T,
    clock: Arc<dyn Clock>,
    rng: SimRng,
    publisher: SnapshotPublisher,
    telemetry: Telemetry,
    c_steps: CounterId,
    c_rx: CounterId,
    c_tx: CounterId,
    c_snapshots: CounterId,
    c_restarts: CounterId,
    c_rx_dropped: CounterId,
    c_commands: CounterId,
    /// Crash windows emulated by the driver itself (soak scenarios):
    /// while "down" the agent discards traffic and mutates nothing;
    /// coming back up runs [`SessionDirectory::restart`].
    faults: Option<FaultPlan>,
    crashed: bool,
}

impl<T: SapTransport> AgentDriver<T> {
    /// Build a driver; `node`/`seed` become both the directory's and the
    /// driver's telemetry identity.
    pub fn new(
        node: u32,
        seed: u64,
        dir_cfg: DirectoryConfig,
        allocator: Box<dyn Allocator>,
        transport: T,
        clock: Arc<dyn Clock>,
        cfg: DriverConfig,
    ) -> AgentDriver<T> {
        let mut directory = SessionDirectory::new(dir_cfg, allocator);
        directory.set_telemetry_identity(node, seed);
        let mut telemetry = Telemetry::new(node, seed);
        let c_steps = telemetry.counter("runtime.steps");
        let c_rx = telemetry.counter("runtime.rx");
        let c_tx = telemetry.counter("runtime.tx");
        let c_snapshots = telemetry.counter("runtime.snapshots");
        let c_restarts = telemetry.counter("runtime.restarts");
        let c_rx_dropped = telemetry.counter("runtime.rx_predecode_dropped");
        let c_commands = telemetry.counter("runtime.commands");
        AgentDriver {
            node,
            cfg,
            directory,
            transport,
            clock,
            rng: SimRng::new(seed ^ u64::from(node).rotate_left(32)),
            publisher: SnapshotPublisher::new(cfg.cadence),
            telemetry,
            c_steps,
            c_rx,
            c_tx,
            c_snapshots,
            c_restarts,
            c_rx_dropped,
            c_commands,
            faults: None,
            crashed: false,
        }
    }

    /// Install driver-emulated crash windows (soak scenarios).  Only the
    /// crash windows are consulted here; link faults belong to the bus.
    pub fn with_faults(mut self, plan: FaultPlan) -> AgentDriver<T> {
        self.faults = Some(plan);
        self
    }

    /// This agent's node index.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The engine (e.g. to create sessions before spawning).
    pub fn directory_mut(&mut self) -> &mut SessionDirectory {
        &mut self.directory
    }

    /// The engine, read-only.
    pub fn directory(&self) -> &SessionDirectory {
        &self.directory
    }

    /// The clock this driver maps protocol time onto.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Readers attach here; cloneable and thread-safe.
    pub fn snapshot_handle(&self) -> SnapshotHandle {
        self.publisher.handle()
    }

    /// Snapshot publication counters.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.publisher.stats()
    }

    /// The driver's `runtime.*` telemetry snapshot.
    pub fn runtime_telemetry_json(&self) -> String {
        self.telemetry.snapshot_json()
    }

    /// Create a session now, with the driver's own RNG.
    pub fn create_session(
        &mut self,
        name: &str,
        ttl: u8,
        media: Vec<Media>,
    ) -> Result<u64, CreateError> {
        let now = self.clock.now();
        let id = self
            .directory
            .create_session(now, name, ttl, media, &mut self.rng)?;
        self.publisher.note_updates(1);
        Ok(id)
    }

    /// Withdraw a session, sending its deletion packet.
    pub fn withdraw_session(&mut self, id: u64) -> io::Result<()> {
        if let Some(pkt) = self.directory.withdraw_session(id) {
            self.transport.send(&pkt)?;
            self.telemetry.inc(self.c_tx);
            self.publisher.note_updates(1);
        }
        Ok(())
    }

    /// Publish a snapshot right now, regardless of cadence.
    pub fn publish_now(&mut self) {
        self.publisher.publish(self.clock.now(), &self.directory);
        self.telemetry.inc(self.c_snapshots);
    }

    /// Feed one received packet to the engine and send any replies.
    fn ingest(&mut self, now: SimTime, pkt: &sdalloc_sap::SapPacket) -> io::Result<()> {
        self.telemetry.inc(self.c_rx);
        let (replies, _events) = self.directory.on_packet(now, pkt, &mut self.rng);
        self.publisher.note_updates(1);
        for reply in replies {
            self.transport.send(&reply)?;
            self.telemetry.inc(self.c_tx);
        }
        Ok(())
    }

    /// Account pre-decode datagram deaths the transport observed.
    fn drain_predecode_drops(&mut self, now: SimTime) {
        let drops = self.transport.take_rx_predecode_drops();
        for _ in 0..drops {
            self.directory.note_rx_dropped(now);
        }
        self.telemetry.inc_by(self.c_rx_dropped, drops);
    }

    /// Emulated crash handling; returns true when the step is consumed
    /// (the agent is down).
    fn crash_window_step(&mut self, now: SimTime) -> io::Result<bool> {
        let Some(plan) = &self.faults else {
            return Ok(false);
        };
        if plan.node_up(now, self.node as usize) {
            if self.crashed {
                self.crashed = false;
                self.directory.restart(self.clock.now());
                self.telemetry.inc(self.c_restarts);
                // Readers must see the wiped cache immediately: the
                // crash exposure window is measured off this snapshot.
                self.publish_now();
            }
            return Ok(false);
        }
        self.crashed = true;
        // Down: the socket is gone — discard anything queued and idle.
        while self.transport.recv(Duration::ZERO)?.is_some() {}
        let _ = self.transport.take_rx_predecode_drops();
        std::thread::sleep(self.cfg.min_wait);
        Ok(true)
    }

    /// One pump iteration: run due timers, publish if due, listen until
    /// the next deadline (capped), ingest what arrives.
    pub fn step(&mut self) -> io::Result<()> {
        self.telemetry.inc(self.c_steps);
        let now = self.clock.now();
        if self.crash_window_step(now)? {
            return Ok(());
        }
        for pkt in self.directory.poll(now) {
            self.transport.send(&pkt)?;
            self.telemetry.inc(self.c_tx);
        }
        if self.publisher.maybe_publish(now, &self.directory) {
            self.telemetry.inc(self.c_snapshots);
        }
        let wait = match self.directory.next_deadline() {
            Some(d) => {
                let gap = Duration::from_nanos(d.saturating_since(now).as_nanos());
                gap.clamp(self.cfg.min_wait, self.cfg.idle_wait)
            }
            None => self.cfg.idle_wait,
        };
        if let Some(pkt) = self.transport.recv(wait)? {
            let rnow = self.clock.now();
            self.ingest(rnow, &pkt)?;
            for _ in 0..self.cfg.drain_batch {
                match self.transport.recv(Duration::ZERO)? {
                    Some(p) => self.ingest(self.clock.now(), &p)?,
                    None => break,
                }
            }
            let pnow = self.clock.now();
            if self.publisher.maybe_publish(pnow, &self.directory) {
                self.telemetry.inc(self.c_snapshots);
            }
        }
        self.drain_predecode_drops(self.clock.now());
        Ok(())
    }

    /// Drive deterministically over a [`VirtualClock`]: ingest whatever
    /// is queued, then jump the clock straight to the directory's next
    /// deadline and run it — the identical wake-on-deadline discipline
    /// the discrete-event testbed applies, so a single agent on a quiet
    /// loopback bus produces a byte-identical packet trace.
    ///
    /// `vclock` must be the same clock this driver was built with.
    pub fn run_deterministic_until(
        &mut self,
        vclock: &VirtualClock,
        horizon: SimTime,
    ) -> io::Result<()> {
        loop {
            while let Some(pkt) = self.transport.recv(Duration::ZERO)? {
                self.ingest(vclock.now(), &pkt)?;
            }
            self.drain_predecode_drops(vclock.now());
            let Some(deadline) = self.directory.next_deadline() else {
                break;
            };
            if deadline > horizon {
                break;
            }
            vclock.advance_to(deadline);
            let now = vclock.now();
            for pkt in self.directory.poll(now) {
                self.transport.send(&pkt)?;
                self.telemetry.inc(self.c_tx);
            }
            if self.publisher.maybe_publish(now, &self.directory) {
                self.telemetry.inc(self.c_snapshots);
            }
        }
        vclock.advance_to(horizon);
        Ok(())
    }

    /// Consume the driver into its exit report.
    pub fn into_exit(self, error: Option<String>) -> AgentExit {
        AgentExit {
            node: self.node,
            cached_sessions: self.directory.cached_sessions(),
            directory_telemetry: self.directory.telemetry_snapshot_json(),
            runtime_telemetry: self.telemetry.snapshot_json(),
            flight_dump: self.directory.flight_dump_json("runtime agent exit"),
            snapshot_stats: self.publisher.stats(),
            error,
        }
    }
}

/// Commands a threaded agent accepts.
enum Command {
    Create {
        name: String,
        ttl: u8,
        media: Vec<Media>,
        reply: Sender<Result<u64, CreateError>>,
    },
    Withdraw {
        id: u64,
    },
    Publish,
    Stop,
}

struct Worker {
    node: u32,
    cmd: Sender<Command>,
    snapshots: SnapshotHandle,
    thread: Option<std::thread::JoinHandle<AgentExit>>,
}

/// A set of agent threads, one per driver, plus their command channels.
///
/// Dropping the runtime without [`Runtime::shutdown`] detaches the
/// threads' command channels, which stops them on their next loop turn.
pub struct Runtime {
    workers: Vec<Worker>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("agents", &self.workers.len())
            .finish()
    }
}

impl Runtime {
    /// Spawn one thread per driver.  Thread `i` serves drivers[i]; its
    /// command latency is bounded by the driver's `idle_wait`.
    pub fn spawn<T>(drivers: Vec<AgentDriver<T>>) -> io::Result<Runtime>
    where
        T: SapTransport + 'static,
    {
        let mut workers = Vec::with_capacity(drivers.len());
        for mut driver in drivers {
            let node = driver.node;
            let snapshots = driver.snapshot_handle();
            let (cmd_tx, cmd_rx): (Sender<Command>, Receiver<Command>) = bounded(16);
            let spawned = std::thread::Builder::new()
                .name(format!("sd-agent-{node}"))
                .spawn(move || worker_loop(&mut driver, &cmd_rx))
                .map(|t| Worker {
                    node,
                    cmd: cmd_tx,
                    snapshots,
                    thread: Some(t),
                });
            match spawned {
                Ok(w) => workers.push(w),
                Err(e) => {
                    // Stop what already started before surfacing.
                    let _ = Runtime { workers }.shutdown();
                    return Err(e);
                }
            }
        }
        Ok(Runtime { workers })
    }

    /// Number of agent threads.
    pub fn agents(&self) -> usize {
        self.workers.len()
    }

    // lint:allow(panic-reach): orchestration API: agent indices are dense and caller-issued
    fn worker(&self, agent: usize) -> &Worker {
        &self.workers[agent]
    }

    /// The snapshot handle of agent `agent` (cloneable; hand to readers).
    pub fn snapshot_handle(&self, agent: usize) -> SnapshotHandle {
        self.worker(agent).snapshots.clone()
    }

    /// Create a session on a running agent (blocking round-trip).
    pub fn create_session(
        &self,
        agent: usize,
        name: &str,
        ttl: u8,
        media: Vec<Media>,
    ) -> Result<u64, CreateError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.worker(agent)
            .cmd
            .send(Command::Create {
                name: name.to_string(),
                ttl,
                media,
                reply: reply_tx,
            })
            .map_err(|_| CreateError::SpaceFull)?;
        reply_rx.recv().unwrap_or(Err(CreateError::SpaceFull))
    }

    /// Withdraw a session on a running agent (fire and forget).
    pub fn withdraw(&self, agent: usize, id: u64) {
        let _ = self.worker(agent).cmd.send(Command::Withdraw { id });
    }

    /// Ask an agent to publish a snapshot out of cadence.
    pub fn publish_now(&self, agent: usize) {
        let _ = self.worker(agent).cmd.send(Command::Publish);
    }

    /// Stop every agent and collect their exit reports, node order.
    pub fn shutdown(mut self) -> Vec<AgentExit> {
        for w in &self.workers {
            let _ = w.cmd.send(Command::Stop);
        }
        let mut exits = Vec::with_capacity(self.workers.len());
        for w in &mut self.workers {
            if let Some(t) = w.thread.take() {
                match t.join() {
                    Ok(exit) => exits.push(exit),
                    Err(_) => exits.push(AgentExit {
                        node: w.node,
                        cached_sessions: 0,
                        directory_telemetry: String::new(),
                        runtime_telemetry: String::new(),
                        flight_dump: String::new(),
                        snapshot_stats: SnapshotStats::default(),
                        error: Some("agent thread panicked".to_string()),
                    }),
                }
            }
        }
        exits
    }
}

/// The worker thread body: serve commands, pump the driver, report.
fn worker_loop<T: SapTransport>(
    driver: &mut AgentDriver<T>,
    cmd_rx: &Receiver<Command>,
) -> AgentExit {
    let error = loop {
        match cmd_rx.try_recv() {
            Ok(Command::Stop) | Err(TryRecvError::Disconnected) => break None,
            Ok(Command::Create {
                name,
                ttl,
                media,
                reply,
            }) => {
                driver.telemetry.inc(driver.c_commands);
                let _ = reply.send(driver.create_session(&name, ttl, media));
            }
            Ok(Command::Withdraw { id }) => {
                driver.telemetry.inc(driver.c_commands);
                if let Err(e) = driver.withdraw_session(id) {
                    break Some(e.to_string());
                }
            }
            Ok(Command::Publish) => {
                driver.telemetry.inc(driver.c_commands);
                driver.publish_now();
            }
            Err(TryRecvError::Empty) => {}
        }
        if let Err(e) = driver.step() {
            break Some(e.to_string());
        }
    };
    // One last snapshot so readers see the final state.
    driver.publish_now();
    driver_exit(driver, error)
}

/// Build an exit report from a borrowed driver (the thread owns it but
/// the loop only has `&mut`).
fn driver_exit<T: SapTransport>(driver: &mut AgentDriver<T>, error: Option<String>) -> AgentExit {
    AgentExit {
        node: driver.node,
        cached_sessions: driver.directory.cached_sessions(),
        directory_telemetry: driver.directory.telemetry_snapshot_json(),
        runtime_telemetry: driver.telemetry.snapshot_json(),
        flight_dump: driver.directory.flight_dump_json("runtime agent exit"),
        snapshot_stats: driver.publisher.stats(),
        error,
    }
}
