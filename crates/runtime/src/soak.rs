//! Wall-clock chaos soak: agent threads under a crash plan while reader
//! threads hammer the snapshot path.
//!
//! The scenario: `agents` directory agents on a [`LoopbackBus`], each
//! announcing its own sessions on an accelerated schedule with PR-8
//! anti-entropy reconciliation enabled.  Partway through, one agent
//! crashes (driver-emulated: it stops pumping, its queued traffic is
//! discarded) and later restarts with an empty cache.  Throughout,
//! `readers` query threads continuously load snapshots and run the
//! zero-alloc query set, verifying every row checksum.
//!
//! The report answers the questions the chaos gate asks:
//! * did any reader stall while the writer crashed/recovered? (the
//!   lock-free claim — a reader must never block on the writer's fate);
//! * did any reader ever observe a torn or recycled row? (the
//!   reclamation claim);
//! * how long was the crashed node's *exposure window* — restart until
//!   its snapshot again carried the pre-crash session set — which is the
//!   runtime-level mirror of the PR-8 reconciliation rebuild numbers.

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sdalloc_core::{AddrSpace, InformedRandomAllocator};
use sdalloc_sap::{BackoffSchedule, DirectoryConfig, Media, ReconcileConfig};
use sdalloc_sim::{FaultPlan, SimDuration, SimTime};

use crate::bus::{BusStats, LoopbackBus};
use crate::clock::{Clock, WallClock};
use crate::driver::{AgentDriver, DriverConfig, Runtime};
use crate::snapshot::SnapshotCadence;

/// Soak scenario knobs.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Agent threads (the last one is the crash victim).
    pub agents: usize,
    /// Reader threads, spread round-robin over the agents' snapshots.
    pub readers: usize,
    /// Total wall-clock run time.
    pub duration: Duration,
    /// Sessions each agent creates before the run.
    pub sessions_per_agent: usize,
    /// Seed for every RNG in the scenario.
    pub seed: u64,
    /// Crash instant, as a fraction of `duration`.
    pub crash_frac: f64,
    /// Restart instant, as a fraction of `duration`.
    pub restart_frac: f64,
}

impl SoakConfig {
    /// CI-sized: seconds, small fleet.
    pub fn smoke(seed: u64) -> SoakConfig {
        SoakConfig {
            agents: 3,
            readers: 2,
            duration: Duration::from_millis(2_500),
            sessions_per_agent: 4,
            seed,
            crash_frac: 0.3,
            restart_frac: 0.5,
        }
    }

    /// The full soak: wall-clock minutes, a bigger fleet.
    pub fn full(seed: u64) -> SoakConfig {
        SoakConfig {
            agents: 4,
            readers: 4,
            duration: Duration::from_secs(120),
            sessions_per_agent: 16,
            seed,
            crash_frac: 0.3,
            restart_frac: 0.5,
        }
    }
}

/// What the soak observed.
#[derive(Debug)]
pub struct SoakReport {
    /// Agents / readers that ran.
    pub agents: usize,
    /// Reader thread count.
    pub readers: usize,
    /// Wall-clock run time actually spent.
    pub elapsed: Duration,
    /// The crash victim's node index.
    pub crash_node: usize,
    /// Rows in the victim's snapshot just before the crash.
    pub pre_crash_rows: usize,
    /// Sessions the victim had cached at shutdown.
    pub post_cached: usize,
    /// Victim's cache recovered to its pre-crash size.
    pub recovered: bool,
    /// Restart → recovery, milliseconds (None = not recovered in time).
    pub exposure_ms: Option<f64>,
    /// Queries each reader completed.
    pub reader_queries: Vec<u64>,
    /// Readers that ever went a full second without completing a query.
    pub stalled_readers: usize,
    /// Torn/recycled rows any reader ever observed (must be 0).
    pub integrity_failures: u64,
    /// Snapshots published across all agents.
    pub snapshots_published: u64,
    /// Bus-level delivery counters.
    pub bus: BusStats,
    /// The victim's flight-recorder dump, captured when a reader stalled.
    pub flight_dump: Option<String>,
}

/// Accelerated protocol timings so crash → re-announce → reconcile all
/// fit inside a CI-sized soak window.
fn soak_directory_config(node: usize) -> DirectoryConfig {
    let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + node as u8));
    cfg.space = AddrSpace::abstract_space(1024);
    cfg.schedule = BackoffSchedule {
        initial: SimDuration::from_millis(100),
        factor: 2,
        cap: SimDuration::from_millis(400),
    };
    cfg.reconcile = Some(ReconcileConfig {
        digest_interval: SimDuration::from_millis(500),
        rebuild_interval: SimDuration::from_millis(100),
        min_digest_gap: SimDuration::from_millis(50),
        min_request_gap: SimDuration::from_millis(50),
        max_reannounce_per_request: 64,
    });
    cfg
}

fn media() -> Vec<Media> {
    vec![Media {
        kind: "audio".into(),
        port: 5004,
        proto: "RTP/AVP".into(),
        format: 0,
    }]
}

/// How long a reader may go without completing one query before it
/// counts as stalled.  Generous because CI may pin everything to one
/// core; a genuinely stalled reader (blocked on a dead writer) would
/// stay stalled for the rest of the run, not for one scheduling gap.
const STALL_AFTER: Duration = Duration::from_secs(1);

/// Run the scenario.  Spends `cfg.duration` of wall-clock time.
// lint:allow(panic-reach): soak harness: joins and dense indices over threads it spawned itself
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let clock: Arc<WallClock> = Arc::new(WallClock::new());
    let crash_node = cfg.agents - 1;
    let crash_at = SimTime::from_secs_f64(cfg.duration.as_secs_f64() * cfg.crash_frac);
    let restart_at = SimTime::from_secs_f64(cfg.duration.as_secs_f64() * cfg.restart_frac);
    let plan = FaultPlan::new().with_crash(crash_node, crash_at, Some(restart_at));
    let bus = LoopbackBus::new(Arc::clone(&clock) as Arc<dyn Clock>, cfg.seed, plan.clone());
    let driver_cfg = DriverConfig {
        min_wait: Duration::from_millis(1),
        idle_wait: Duration::from_millis(10),
        drain_batch: 64,
        cadence: SnapshotCadence {
            min_interval: SimDuration::from_millis(20),
            max_pending: 1_000,
        },
    };
    let mut drivers = Vec::with_capacity(cfg.agents);
    for node in 0..cfg.agents {
        let mut driver = AgentDriver::new(
            node as u32,
            cfg.seed,
            soak_directory_config(node),
            Box::new(InformedRandomAllocator),
            bus.endpoint(),
            Arc::clone(&clock) as Arc<dyn Clock>,
            driver_cfg,
        )
        .with_faults(plan.clone());
        for s in 0..cfg.sessions_per_agent {
            let _ = driver.create_session(&format!("soak-{node}-{s}"), 127, media());
        }
        driver.publish_now();
        drivers.push(driver);
    }
    let victim_snapshots = drivers[crash_node].snapshot_handle();
    let runtime = Runtime::spawn(drivers).expect("spawn agent threads");

    // Readers.
    let stop = Arc::new(AtomicBool::new(false));
    let integrity_failures = Arc::new(AtomicU64::new(0));
    let counters: Vec<Arc<AtomicU64>> = (0..cfg.readers)
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    let mut reader_threads = Vec::with_capacity(cfg.readers);
    for (r, counter) in counters.iter().enumerate() {
        let handle = runtime.snapshot_handle(r % cfg.agents);
        let stop = Arc::clone(&stop);
        let counter = Arc::clone(counter);
        let bad = Arc::clone(&integrity_failures);
        reader_threads.push(
            std::thread::Builder::new()
                .name(format!("sd-reader-{r}"))
                .spawn(move || {
                    let mut reader = handle.reader();
                    let probe = Ipv4Addr::new(224, 2, 0, 1);
                    while !stop.load(Ordering::Relaxed) {
                        let snap = reader.load();
                        let corrupt = snap.corrupt_rows();
                        if corrupt > 0 {
                            bad.fetch_add(corrupt as u64, Ordering::Relaxed);
                        }
                        let _ = snap.group_in_use(probe);
                        let _ = snap.matching("soak").count();
                        drop(snap);
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .expect("spawn reader thread"),
        );
    }

    // Watchdog loop: stall detection + exposure-window measurement.
    let started = Instant::now();
    let mut last_counts = vec![0u64; cfg.readers];
    let mut last_progress = vec![started; cfg.readers];
    let mut ever_stalled = vec![false; cfg.readers];
    let mut victim_reader = victim_snapshots.reader();
    let mut pre_crash_rows = 0usize;
    let mut recovered_at: Option<SimTime> = None;
    while started.elapsed() < cfg.duration {
        std::thread::sleep(Duration::from_millis(50));
        let wall = Instant::now();
        for r in 0..cfg.readers {
            let n = counters[r].load(Ordering::Relaxed);
            if n != last_counts[r] {
                last_counts[r] = n;
                last_progress[r] = wall;
            } else if wall.duration_since(last_progress[r]) > STALL_AFTER {
                ever_stalled[r] = true;
            }
        }
        let now = clock.now();
        let rows = victim_reader.load().len();
        if now < crash_at {
            pre_crash_rows = rows;
        } else if now >= restart_at && recovered_at.is_none() && rows >= pre_crash_rows {
            recovered_at = Some(now);
        }
    }
    stop.store(true, Ordering::Relaxed);
    for t in reader_threads {
        t.join().expect("reader thread");
    }
    let exits = runtime.shutdown();
    let stalled_readers = ever_stalled.iter().filter(|&&s| s).count();
    let exposure_ms = recovered_at
        .map(|at| at.saturating_since(restart_at).as_secs_f64() * 1e3)
        .filter(|_| pre_crash_rows > 0);
    SoakReport {
        agents: cfg.agents,
        readers: cfg.readers,
        elapsed: started.elapsed(),
        crash_node,
        pre_crash_rows,
        post_cached: exits[crash_node].cached_sessions,
        recovered: pre_crash_rows > 0 && exits[crash_node].cached_sessions >= pre_crash_rows,
        exposure_ms,
        reader_queries: counters.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        stalled_readers,
        integrity_failures: integrity_failures.load(Ordering::Relaxed),
        snapshots_published: exits.iter().map(|e| e.snapshot_stats.published).sum(),
        bus: bus.stats(),
        flight_dump: (stalled_readers > 0).then(|| exits[crash_node].flight_dump.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soak_recovers_and_never_stalls() {
        let report = run_soak(&SoakConfig::smoke(42));
        assert_eq!(report.integrity_failures, 0, "torn rows observed");
        assert_eq!(report.stalled_readers, 0, "a reader stalled: {report:?}");
        assert!(
            report.reader_queries.iter().all(|&q| q > 0),
            "every reader made progress: {report:?}"
        );
        assert!(report.pre_crash_rows > 0, "victim heard peers: {report:?}");
        assert!(report.recovered, "victim cache rebuilt: {report:?}");
        assert!(report.snapshots_published > 0);
    }
}
