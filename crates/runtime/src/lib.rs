//! # sdalloc-runtime — the production runtime
//!
//! Everything below `crates/sap` is a *protocol engine*: a pure state
//! machine (`SessionDirectory`) that maps `(now, packet | timer)` to
//! emitted packets, driven so far by the discrete-event simulator.  This
//! crate is the other half of a deployable session directory: threads,
//! sockets, and a way for many concurrent queries ("which sessions are
//! visible?", "is this group in use?") to proceed while the protocol
//! thread keeps ingesting announcements.
//!
//! Three pieces:
//!
//! * **Driver** ([`AgentDriver`], [`Runtime`]) — one thread per agent,
//!   each owning its directory, sleeping until the engine's
//!   `next_deadline` or socket readability, generic over
//!   [`sdalloc_sap::SapTransport`]: real UDP multicast
//!   ([`sdalloc_sap::SapSocket`]) or the in-process [`LoopbackBus`].
//! * **Loopback bus** ([`LoopbackBus`]) — a multicast scope made of
//!   queues, with [`sdalloc_sim::FaultPlan`] applied per (packet, link)
//!   exactly like the simulator's testbed, so chaos scenarios run
//!   unmodified against real threads; deterministic under a
//!   [`VirtualClock`] with a single agent, which the differential
//!   fingerprint tests exploit.
//! * **Snapshot read path** ([`SnapshotPublisher`], [`SnapshotReader`])
//!   — the writer periodically captures its cache into an immutable
//!   [`DirectorySnapshot`] and publishes it with one atomic pointer
//!   swap ([`crossbeam::epoch::ArcSwap`]); readers borrow the current
//!   snapshot lock-free and allocation-free, with epoch-based deferred
//!   reclamation guaranteeing no snapshot is freed while a reader holds
//!   it.  Each row carries a checksum so stress tests can prove reads
//!   are never torn.
//!
//! The [`soak`] module packages the chaos scenario (crash/restart under
//! reader load) that `experiments chaos` and `scripts/check.sh` gate on.

pub mod bus;
pub mod clock;
pub mod driver;
pub mod snapshot;
pub mod soak;

pub use bus::{BusEndpoint, BusStats, LoopbackBus};
pub use clock::{Clock, VirtualClock, WallClock};
pub use driver::{AgentDriver, AgentExit, DriverConfig, Runtime};
pub use snapshot::{
    DirectorySnapshot, SessionRow, SnapshotCadence, SnapshotHandle, SnapshotPublisher,
    SnapshotReader, SnapshotStats,
};
pub use soak::{run_soak, SoakConfig, SoakReport};
