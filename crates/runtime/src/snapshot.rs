//! Immutable directory snapshots and the lock-free read path.
//!
//! The writer (an agent thread that owns its
//! [`sdalloc_sap::SessionDirectory`]) periodically *captures* the
//! announcement cache into a [`DirectorySnapshot`] — a sorted, immutable,
//! cheaply shareable projection — and *publishes* it with one atomic
//! pointer swap through [`crossbeam::epoch::ArcSwap`].  Query threads
//! hold a [`SnapshotReader`] and borrow the current snapshot without
//! taking any lock; superseded snapshots are reclaimed only once every
//! pinned reader has moved past them (see `vendor/crossbeam/src/epoch.rs`
//! for the safety argument).
//!
//! Everything a query needs is precomputed at capture time so the read
//! side allocates nothing: rows are sorted by [`CacheKey`] (binary-search
//! point lookups), the distinct group list is sorted (binary-search
//! `group_in_use`), and the allocator-facing visible-session projection
//! is materialised once.  Each row carries an FNV-1a checksum over its
//! fields, letting stress tests prove that a reader can never observe a
//! torn or recycled row: a snapshot either verifies in full or the
//! reclamation scheme is broken.

use std::net::Ipv4Addr;
use std::sync::Arc;

use crossbeam::epoch::{ArcSwap, Guard, Reader};
use sdalloc_core::VisibleSession;
use sdalloc_sap::cache::CacheKey;
use sdalloc_sap::SessionDirectory;
use sdalloc_sim::{SimDuration, SimTime};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold bytes into a running FNV-1a state without materialising a
/// buffer — the read-path verifier must not allocate.
fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One cached session, flattened out of the slab arena into a
/// self-contained row.  The name is an `Arc<str>` shared with the
/// cache's interner — capturing a snapshot clones the Arc, not the text.
#[derive(Debug, Clone)]
pub struct SessionRow {
    /// The cache key (origin, session id).
    pub key: CacheKey,
    /// Allocated multicast group.
    pub group: Ipv4Addr,
    /// Announced scope TTL.
    pub ttl: u8,
    /// SDP origin version.
    pub version: u64,
    /// When the entry was last refreshed (writer's clock).
    pub last_heard: SimTime,
    /// Session name, shared with the cache interner.
    pub name: Arc<str>,
    checksum: u64,
}

impl SessionRow {
    fn new(
        key: CacheKey,
        group: Ipv4Addr,
        ttl: u8,
        version: u64,
        last_heard: SimTime,
        name: Arc<str>,
    ) -> SessionRow {
        let checksum = Self::checksum_of(key, group, ttl, version, last_heard, &name);
        SessionRow {
            key,
            group,
            ttl,
            version,
            last_heard,
            name,
            checksum,
        }
    }

    fn checksum_of(
        key: CacheKey,
        group: Ipv4Addr,
        ttl: u8,
        version: u64,
        last_heard: SimTime,
        name: &str,
    ) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv_fold(h, &key.origin.octets());
        h = fnv_fold(h, &key.session_id.to_le_bytes());
        h = fnv_fold(h, &group.octets());
        h = fnv_fold(h, &[ttl]);
        h = fnv_fold(h, &version.to_le_bytes());
        h = fnv_fold(h, &last_heard.as_nanos().to_le_bytes());
        fnv_fold(h, name.as_bytes())
    }

    /// Recompute the checksum and compare.  `false` means the reader is
    /// looking at torn or recycled memory — must never happen.
    pub fn verify(&self) -> bool {
        Self::checksum_of(
            self.key,
            self.group,
            self.ttl,
            self.version,
            self.last_heard,
            &self.name,
        ) == self.checksum
    }
}

/// An immutable, point-in-time projection of one directory's cache.
#[derive(Debug)]
pub struct DirectorySnapshot {
    version: u64,
    published_at: SimTime,
    /// All cached sessions, sorted by key.
    rows: Vec<SessionRow>,
    /// Distinct groups in use, sorted.
    groups: Vec<Ipv4Addr>,
    /// The allocator-facing view (cache ∩ address space, plus own
    /// sessions), as [`SessionDirectory::current_view`] computes it.
    visible: Vec<VisibleSession>,
}

impl DirectorySnapshot {
    /// The snapshot a publisher starts from: version 0, no rows.
    pub fn empty() -> DirectorySnapshot {
        DirectorySnapshot {
            version: 0,
            published_at: SimTime::ZERO,
            rows: Vec::new(),
            groups: Vec::new(),
            visible: Vec::new(),
        }
    }

    /// Capture the directory's cache as of `now`.  Writer-side only:
    /// allocates the row/group/visible vectors.
    pub fn capture(version: u64, now: SimTime, dir: &SessionDirectory) -> DirectorySnapshot {
        let cache = dir.cache();
        let mut rows: Vec<SessionRow> = cache
            .iter()
            .map(|(key, entry)| {
                SessionRow::new(
                    key,
                    entry.group(),
                    entry.ttl(),
                    entry.version(),
                    entry.last_heard(),
                    entry.name_arc().unwrap_or_else(|| Arc::from("")),
                )
            })
            .collect();
        rows.sort_unstable_by_key(|r| r.key);
        let mut groups: Vec<Ipv4Addr> = rows.iter().map(|r| r.group).collect();
        groups.sort_unstable();
        groups.dedup();
        DirectorySnapshot {
            version,
            published_at: now,
            rows,
            groups,
            visible: dir.current_view(),
        }
    }

    /// Monotone publication counter (0 = the empty pre-first snapshot).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Writer-clock instant this snapshot was captured.
    pub fn published_at(&self) -> SimTime {
        self.published_at
    }

    /// How far behind `now` this snapshot is.
    pub fn staleness(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.published_at)
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the cache was empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, sorted by key.
    pub fn rows(&self) -> &[SessionRow] {
        &self.rows
    }

    /// The allocator-facing visible-session projection.
    pub fn visible_sessions(&self) -> &[VisibleSession] {
        &self.visible
    }

    /// Point lookup by cache key.  Zero-alloc (binary search).
    pub fn get(&self, origin: Ipv4Addr, session_id: u64) -> Option<&SessionRow> {
        let key = CacheKey { origin, session_id };
        self.rows
            .binary_search_by_key(&key, |r| r.key)
            .ok()
            .and_then(|i| self.rows.get(i))
    }

    /// Whether any cached session occupies `group`.  Zero-alloc.
    pub fn group_in_use(&self, group: Ipv4Addr) -> bool {
        self.groups.binary_search(&group).is_ok()
    }

    /// Rows whose name contains `keyword` (case-sensitive substring, as
    /// sdr's browser filter).  Zero-alloc iterator.
    pub fn matching<'a>(&'a self, keyword: &'a str) -> impl Iterator<Item = &'a SessionRow> + 'a {
        self.rows.iter().filter(move |r| r.name.contains(keyword))
    }

    /// Verify every row checksum, returning the number of corrupt rows.
    /// Anything other than 0 means a reader observed torn or recycled
    /// memory.  Zero-alloc.
    pub fn corrupt_rows(&self) -> usize {
        self.rows.iter().filter(|r| !r.verify()).count()
    }
}

/// When the writer publishes a fresh snapshot.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotCadence {
    /// Publish no more often than this while updates trickle in.
    pub min_interval: SimDuration,
    /// …but never let more than this many cache updates pile up
    /// unpublished, even inside the interval.
    pub max_pending: u64,
}

impl Default for SnapshotCadence {
    fn default() -> Self {
        SnapshotCadence {
            min_interval: SimDuration::from_millis(250),
            max_pending: 50_000,
        }
    }
}

/// Writer-side publication counters (plain values; the driver mirrors
/// them into its telemetry).
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotStats {
    /// Snapshots published (== current snapshot version).
    pub published: u64,
    /// Rows in the most recent snapshot.
    pub last_rows: usize,
    /// Largest update batch folded into one publication.
    pub max_batch: u64,
}

/// The writer's half of the snapshot cell: owns the cadence policy and
/// the pending-update accounting, publishes via the epoch cell.
#[derive(Debug)]
pub struct SnapshotPublisher {
    cell: ArcSwap<DirectorySnapshot>,
    cadence: SnapshotCadence,
    pending: u64,
    stats: SnapshotStats,
    last_published: Option<SimTime>,
}

impl SnapshotPublisher {
    /// A publisher holding the empty snapshot.
    pub fn new(cadence: SnapshotCadence) -> SnapshotPublisher {
        SnapshotPublisher {
            cell: ArcSwap::new(Arc::new(DirectorySnapshot::empty())),
            cadence,
            pending: 0,
            stats: SnapshotStats::default(),
            last_published: None,
        }
    }

    /// A cloneable handle readers hang off.
    pub fn handle(&self) -> SnapshotHandle {
        SnapshotHandle {
            cell: self.cell.clone(),
        }
    }

    /// Record that `n` cache updates landed since the last publication.
    pub fn note_updates(&mut self, n: u64) {
        self.pending = self.pending.saturating_add(n);
    }

    /// Publish if the cadence policy says so: first publication is
    /// immediate, afterwards updates must be pending *and* either the
    /// interval has elapsed or the pending backlog hit `max_pending`.
    pub fn maybe_publish(&mut self, now: SimTime, dir: &SessionDirectory) -> bool {
        let due = match self.last_published {
            None => true,
            Some(last) => {
                self.pending > 0
                    && (now.saturating_since(last) >= self.cadence.min_interval
                        || self.pending >= self.cadence.max_pending)
            }
        };
        if due {
            self.publish(now, dir);
        }
        due
    }

    /// Unconditional publication (used at startup and by tests).
    pub fn publish(&mut self, now: SimTime, dir: &SessionDirectory) {
        let version = self.stats.published + 1;
        let snap = DirectorySnapshot::capture(version, now, dir);
        self.stats.published = version;
        self.stats.last_rows = snap.len();
        self.stats.max_batch = self.stats.max_batch.max(self.pending);
        self.pending = 0;
        self.last_published = Some(now);
        self.cell.store(Arc::new(snap));
    }

    /// Publication counters so far.
    pub fn stats(&self) -> SnapshotStats {
        self.stats
    }

    /// Retired-but-not-yet-freed snapshots (readers may still hold them).
    pub fn retired_len(&self) -> usize {
        self.cell.retired_len()
    }
}

/// Cloneable, thread-safe entry point to a writer's snapshot cell.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    cell: ArcSwap<DirectorySnapshot>,
}

impl SnapshotHandle {
    /// A per-thread reader.  Each query thread needs its own (the epoch
    /// pin slot is per-reader); the reader itself is `Send`.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            inner: self.cell.reader(),
        }
    }

    /// Owned copy of the current snapshot via the slow (locking) path —
    /// for one-off inspection off the hot path.
    pub fn load_slow(&self) -> Arc<DirectorySnapshot> {
        self.cell.load_full_slow()
    }
}

/// A pinned-epoch reader of one writer's snapshots.
#[derive(Debug)]
pub struct SnapshotReader {
    inner: Reader<DirectorySnapshot>,
}

impl SnapshotReader {
    /// Borrow the current snapshot without locking.  The borrow pins the
    /// reader's epoch slot; the snapshot cannot be freed while the guard
    /// lives.  Zero-alloc.
    pub fn load(&mut self) -> Guard<'_, DirectorySnapshot> {
        self.inner.load()
    }

    /// Promote to an owned `Arc` (outlives any publication).
    pub fn load_full(&mut self) -> Arc<DirectorySnapshot> {
        self.inner.load_full()
    }

    /// Whether this reader got a dedicated epoch slot (true for the
    /// first [`crossbeam::epoch::MAX_READERS`] readers per cell).
    pub fn is_lock_free(&self) -> bool {
        self.inner.is_lock_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_core::{AddrSpace, InformedRandomAllocator};
    use sdalloc_sap::{DirectoryConfig, SessionDescription};

    fn directory_with(n: usize) -> SessionDirectory {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
        cfg.space = AddrSpace::abstract_space(256);
        let mut dir = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
        let now = SimTime::from_secs(1);
        for i in 0..n {
            let desc = SessionDescription {
                origin: sdalloc_sap::Origin {
                    username: "-".into(),
                    session_id: 100 + i as u64,
                    version: 1,
                    address: Ipv4Addr::new(10, 0, 1, 1 + (i % 200) as u8),
                },
                name: format!("session-{i}"),
                info: None,
                group: Ipv4Addr::new(224, 2, 0, 1 + (i % 200) as u8),
                ttl: 127,
                start: 0,
                stop: 0,
                media: vec![],
            };
            dir.cache_observe_for_test(now, desc);
        }
        dir
    }

    #[test]
    fn capture_is_sorted_and_queryable() {
        let dir = directory_with(20);
        let snap = DirectorySnapshot::capture(1, SimTime::from_secs(2), &dir);
        assert_eq!(snap.len(), 20);
        assert!(snap.rows().windows(2).all(|w| w[0].key < w[1].key));
        assert!(snap.group_in_use(Ipv4Addr::new(224, 2, 0, 3)));
        assert!(!snap.group_in_use(Ipv4Addr::new(224, 9, 9, 9)));
        let row = snap
            .get(Ipv4Addr::new(10, 0, 1, 6), 105)
            .expect("row present");
        assert_eq!(&*row.name, "session-5");
        assert_eq!(snap.matching("session-1").count(), 11); // 1, 10..19
        assert_eq!(snap.corrupt_rows(), 0);
    }

    #[test]
    fn row_checksum_detects_mutation() {
        let dir = directory_with(1);
        let snap = DirectorySnapshot::capture(1, SimTime::from_secs(2), &dir);
        let mut row = snap.rows()[0].clone();
        assert!(row.verify());
        row.ttl ^= 0xFF;
        assert!(!row.verify(), "a torn row must fail verification");
    }

    #[test]
    fn cadence_batches_publications() {
        let dir = directory_with(3);
        let mut p = SnapshotPublisher::new(SnapshotCadence {
            min_interval: SimDuration::from_millis(100),
            max_pending: 10,
        });
        // First publication is unconditional.
        assert!(p.maybe_publish(SimTime::from_millis(1), &dir));
        // No updates pending: nothing to publish.
        assert!(!p.maybe_publish(SimTime::from_millis(500), &dir));
        p.note_updates(1);
        assert!(
            p.maybe_publish(SimTime::from_millis(510), &dir),
            "interval elapsed"
        );
        // Updates inside the interval: held back…
        p.note_updates(1);
        assert!(!p.maybe_publish(SimTime::from_millis(560), &dir));
        // …until the interval elapses.
        assert!(p.maybe_publish(SimTime::from_millis(611), &dir));
        // A backlog at max_pending forces through the interval.
        p.note_updates(10);
        assert!(p.maybe_publish(SimTime::from_millis(612), &dir));
        assert_eq!(p.stats().published, 4);
        assert_eq!(p.stats().max_batch, 10);
    }

    #[test]
    fn reader_sees_latest_publication() {
        let dir = directory_with(5);
        let mut p = SnapshotPublisher::new(SnapshotCadence::default());
        let handle = p.handle();
        let mut reader = handle.reader();
        assert_eq!(reader.load().version(), 0);
        p.publish(SimTime::from_secs(1), &dir);
        let snap = reader.load();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.len(), 5);
        assert_eq!(
            snap.staleness(SimTime::from_secs(3)),
            SimDuration::from_secs(2)
        );
    }
}
