//! In-process loopback bus: a multicast scope made of queues.
//!
//! Every [`BusEndpoint`] implements [`SapTransport`], so the same
//! [`crate::AgentDriver`] runs unchanged over a real UDP multicast
//! socket or over this bus.  A send fans the packet out to every *other*
//! endpoint (multicast semantics minus self-loopback, matching the
//! discrete-event testbed, whose directories never hear themselves).
//!
//! The bus consults a [`FaultPlan`] per (packet, link): partition
//! windows, burst loss, crashed recipients, and corruption that must
//! survive a real [`SapFrame::decode`] to be delivered — the identical
//! discipline `Testbed::fan_out` applies, so chaos scenarios written
//! against the simulator run unmodified against the threaded runtime.
//! Packets mangled beyond recognition still "hit the socket": the
//! receiving endpoint accumulates a pre-decode drop count which the
//! driver drains into [`SessionDirectory::note_rx_dropped`] via
//! [`SapTransport::take_rx_predecode_drops`].
//!
//! An optional byte trace records every emission as
//! `time-nanos ‖ node ‖ encoded packet` — the same format as
//! `Testbed::enable_packet_trace`, which is what the differential test
//! fingerprints.  With a single agent (no cross-traffic, no shared-RNG
//! interleaving) the bus is fully deterministic under a
//! [`crate::VirtualClock`]; with many threads, fault decisions stay
//! seed-driven but their interleaving follows the scheduler.
//!
//! [`SessionDirectory::note_rx_dropped`]: sdalloc_sap::SessionDirectory::note_rx_dropped

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use sdalloc_sap::net::SapTransport;
use sdalloc_sap::wire::{SapFrame, SapPacket};
use sdalloc_sim::{FaultPlan, SimRng};

use crate::clock::Clock;

/// Per-endpoint queue bound: a real socket's receive buffer is finite,
/// so the bus's is too; overflow drops the newest packet (accounted in
/// [`BusStats::dropped_full`]).
const QUEUE_CAPACITY: usize = 4096;

/// Counters the bus keeps about its own behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct BusStats {
    /// Packets handed to `send`.
    pub sent: u64,
    /// (packet, link) deliveries that reached a queue.
    pub delivered: u64,
    /// Deliveries suppressed by partitions or burst loss.
    pub dropped_loss: u64,
    /// Deliveries suppressed because the recipient (or sender) was
    /// inside a crash window.
    pub dropped_down: u64,
    /// Deliveries mangled past decoding (counted at the receiver too,
    /// as pre-decode drops).
    pub dropped_corrupt: u64,
    /// Deliveries refused by a full endpoint queue.
    pub dropped_full: u64,
}

struct Endpoint {
    node: usize,
    queue: Mutex<VecDeque<SapPacket>>,
    ready: Condvar,
    predecode_drops: AtomicU64,
}

struct BusShared {
    clock: Arc<dyn Clock>,
    faults: FaultPlan,
    rng: Mutex<SimRng>,
    endpoints: Mutex<Vec<Arc<Endpoint>>>,
    trace: Mutex<Option<Vec<u8>>>,
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped_loss: AtomicU64,
    dropped_down: AtomicU64,
    dropped_corrupt: AtomicU64,
    dropped_full: AtomicU64,
}

/// The bus itself; clone-free — endpoints keep it alive.
pub struct LoopbackBus {
    shared: Arc<BusShared>,
}

impl std::fmt::Debug for LoopbackBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackBus")
            .field("endpoints", &self.shared.endpoints.lock().map(|e| e.len()))
            .finish()
    }
}

impl LoopbackBus {
    /// A bus on `clock` with fault decisions drawn from `seed` under
    /// `faults` (use `FaultPlan::new()` for a clean network).
    pub fn new(clock: Arc<dyn Clock>, seed: u64, faults: FaultPlan) -> LoopbackBus {
        LoopbackBus {
            shared: Arc::new(BusShared {
                clock,
                faults,
                rng: Mutex::new(SimRng::new(seed)),
                endpoints: Mutex::new(Vec::new()),
                trace: Mutex::new(None),
                sent: AtomicU64::new(0),
                delivered: AtomicU64::new(0),
                dropped_loss: AtomicU64::new(0),
                dropped_down: AtomicU64::new(0),
                dropped_corrupt: AtomicU64::new(0),
                dropped_full: AtomicU64::new(0),
            }),
        }
    }

    /// Register the next endpoint; node indices are issued densely in
    /// call order and must line up with the [`FaultPlan`]'s node ids.
    pub fn endpoint(&self) -> BusEndpoint {
        let mut endpoints = lock(&self.shared.endpoints);
        let ep = Arc::new(Endpoint {
            node: endpoints.len(),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            predecode_drops: AtomicU64::new(0),
        });
        endpoints.push(Arc::clone(&ep));
        BusEndpoint {
            shared: Arc::clone(&self.shared),
            me: ep,
        }
    }

    /// Start recording emissions (format documented on the module).
    pub fn enable_packet_trace(&self) {
        *lock(&self.shared.trace) = Some(Vec::new());
    }

    /// Take the trace recorded so far, leaving recording enabled.
    pub fn take_packet_trace(&self) -> Vec<u8> {
        lock(&self.shared.trace)
            .replace(Vec::new())
            .unwrap_or_default()
    }

    /// Counters so far.
    pub fn stats(&self) -> BusStats {
        let s = &self.shared;
        BusStats {
            sent: s.sent.load(Ordering::Relaxed),
            delivered: s.delivered.load(Ordering::Relaxed),
            dropped_loss: s.dropped_loss.load(Ordering::Relaxed),
            dropped_down: s.dropped_down.load(Ordering::Relaxed),
            dropped_corrupt: s.dropped_corrupt.load(Ordering::Relaxed),
            dropped_full: s.dropped_full.load(Ordering::Relaxed),
        }
    }
}

/// Recover from mutex poisoning instead of propagating the panic: the
/// bus's invariants are per-operation (queues are just packet lists), so
/// a panicked peer thread must not take the whole runtime down with it.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One agent's attachment to the bus.
pub struct BusEndpoint {
    shared: Arc<BusShared>,
    me: Arc<Endpoint>,
}

impl std::fmt::Debug for BusEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BusEndpoint")
            .field("node", &self.me.node)
            .finish()
    }
}

impl BusEndpoint {
    /// This endpoint's dense node index on the bus.
    pub fn node(&self) -> usize {
        self.me.node
    }
}

impl SapTransport for BusEndpoint {
    fn send(&self, pkt: &SapPacket) -> io::Result<usize> {
        let shared = &self.shared;
        let now = shared.clock.now();
        let bytes = pkt.encode();
        if let Some(t) = lock(&shared.trace).as_mut() {
            t.extend_from_slice(&now.as_nanos().to_le_bytes());
            t.push(self.me.node as u8);
            t.extend_from_slice(&bytes);
        }
        shared.sent.fetch_add(1, Ordering::Relaxed);
        if !shared.faults.node_up(now, self.me.node) {
            // A crashed sender's packets go nowhere (the driver should
            // not even be stepping it; this is the backstop).
            shared.dropped_down.fetch_add(1, Ordering::Relaxed);
            return Ok(bytes.len());
        }
        let endpoints = lock(&shared.endpoints);
        let mut rng = lock(&shared.rng);
        for ep in endpoints.iter() {
            if ep.node == self.me.node {
                continue; // no self-loopback, like the testbed
            }
            if !shared.faults.delivers(now, self.me.node, ep.node) {
                shared.dropped_loss.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if !shared.faults.node_up(now, ep.node) {
                shared.dropped_down.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let extra = shared.faults.extra_drop(now);
            if extra > 0.0 && rng.chance(extra) {
                shared.dropped_loss.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let mut delivered = pkt.clone();
            if let Some((p, mode)) = shared.faults.corruption_at(now) {
                if rng.chance(p) {
                    let mut mangled = bytes.to_vec();
                    mode.apply(&mut mangled, &mut rng);
                    match SapFrame::decode(&mangled) {
                        Ok(frame) => delivered = frame.to_packet(),
                        Err(_) => {
                            // Dead before decode: account it at the
                            // receiver and wake it so the drop is
                            // processed promptly.
                            ep.predecode_drops.fetch_add(1, Ordering::Relaxed);
                            shared.dropped_corrupt.fetch_add(1, Ordering::Relaxed);
                            ep.ready.notify_one();
                            continue;
                        }
                    }
                }
            }
            let mut queue = lock(&ep.queue);
            if queue.len() >= QUEUE_CAPACITY {
                shared.dropped_full.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            queue.push_back(delivered);
            drop(queue);
            ep.ready.notify_one();
            shared.delivered.fetch_add(1, Ordering::Relaxed);
        }
        Ok(bytes.len())
    }

    fn recv(&self, timeout: Duration) -> io::Result<Option<SapPacket>> {
        let mut queue = lock(&self.me.queue);
        if let Some(pkt) = queue.pop_front() {
            return Ok(Some(pkt));
        }
        if timeout.is_zero() {
            return Ok(None);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            let (guard, _timed_out) = self
                .me
                .ready
                .wait_timeout(queue, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
            if let Some(pkt) = queue.pop_front() {
                return Ok(Some(pkt));
            }
            // Woken for a pre-decode drop (or spuriously): let the
            // driver observe the drop counter rather than spin here.
            if self.me.predecode_drops.load(Ordering::Relaxed) > 0 {
                return Ok(None);
            }
        }
    }

    fn take_rx_predecode_drops(&self) -> u64 {
        self.me.predecode_drops.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use sdalloc_sim::{CorruptionMode, SimTime};
    use std::net::Ipv4Addr;

    fn pkt(id: u16) -> SapPacket {
        SapPacket::announce(
            Ipv4Addr::new(10, 0, 0, 9),
            id,
            format!(
                "v=0\r\no=- {id} 1 IN IP4 10.0.0.9\r\ns=bus\r\nc=IN IP4 224.2.0.1/127\r\nt=0 0\r\n"
            ),
        )
    }

    #[test]
    fn fans_out_to_all_but_sender() {
        let clock = Arc::new(VirtualClock::new());
        let bus = LoopbackBus::new(clock, 1, FaultPlan::new());
        let a = bus.endpoint();
        let b = bus.endpoint();
        let c = bus.endpoint();
        a.send(&pkt(7)).unwrap();
        assert!(a.recv(Duration::ZERO).unwrap().is_none(), "no self-loop");
        assert_eq!(b.recv(Duration::ZERO).unwrap().unwrap().msg_id_hash, 7);
        assert_eq!(c.recv(Duration::ZERO).unwrap().unwrap().msg_id_hash, 7);
        assert_eq!(bus.stats().delivered, 2);
    }

    #[test]
    fn recv_blocks_until_send_or_timeout() {
        let clock = Arc::new(VirtualClock::new());
        let bus = LoopbackBus::new(clock, 2, FaultPlan::new());
        let a = bus.endpoint();
        let b = bus.endpoint();
        let start = Instant::now();
        assert!(b.recv(Duration::from_millis(30)).unwrap().is_none());
        assert!(start.elapsed() >= Duration::from_millis(25), "waited");
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            a.send(&pkt(9)).unwrap();
        });
        let got = b.recv(Duration::from_secs(5)).unwrap();
        t.join().unwrap();
        assert_eq!(got.unwrap().msg_id_hash, 9, "woken by the send");
    }

    #[test]
    fn partition_window_cuts_links() {
        let clock = Arc::new(VirtualClock::new());
        let plan = FaultPlan::new().with_partition(
            SimTime::ZERO,
            SimTime::from_secs(10),
            vec![0],
            vec![1],
        );
        let bus = LoopbackBus::new(Arc::clone(&clock) as Arc<dyn Clock>, 3, plan);
        let a = bus.endpoint();
        let b = bus.endpoint();
        a.send(&pkt(1)).unwrap();
        assert!(b.recv(Duration::ZERO).unwrap().is_none(), "partitioned");
        clock.advance_to(SimTime::from_secs(11));
        a.send(&pkt(2)).unwrap();
        assert_eq!(b.recv(Duration::ZERO).unwrap().unwrap().msg_id_hash, 2);
    }

    #[test]
    fn garbage_corruption_surfaces_as_predecode_drops() {
        let clock = Arc::new(VirtualClock::new());
        let plan = FaultPlan::new().with_corruption(
            SimTime::ZERO,
            SimTime::from_secs(10),
            1.0,
            CorruptionMode::Garbage,
        );
        let bus = LoopbackBus::new(clock, 4, plan);
        let a = bus.endpoint();
        let b = bus.endpoint();
        a.send(&pkt(5)).unwrap();
        assert!(b.recv(Duration::ZERO).unwrap().is_none());
        assert_eq!(b.take_rx_predecode_drops(), 1, "drop accounted at receiver");
        assert_eq!(b.take_rx_predecode_drops(), 0, "count resets on read");
        assert_eq!(bus.stats().dropped_corrupt, 1);
    }

    #[test]
    fn trace_records_time_node_bytes() {
        let clock = Arc::new(VirtualClock::new());
        clock.advance_to(SimTime::from_nanos(42));
        let bus = LoopbackBus::new(Arc::clone(&clock) as Arc<dyn Clock>, 5, FaultPlan::new());
        bus.enable_packet_trace();
        let a = bus.endpoint();
        let _b = bus.endpoint();
        let p = pkt(3);
        a.send(&p).unwrap();
        let trace = bus.take_packet_trace();
        let encoded = p.encode();
        assert_eq!(trace.len(), 8 + 1 + encoded.len());
        assert_eq!(&trace[..8], &42u64.to_le_bytes());
        assert_eq!(trace[8], 0, "sender node index");
        assert_eq!(&trace[9..], &encoded[..]);
        assert!(bus.take_packet_trace().is_empty(), "trace drained");
    }
}
