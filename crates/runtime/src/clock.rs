//! Time sources for the runtime driver.
//!
//! The protocol engine ([`sdalloc_sap::SessionDirectory`]) speaks
//! [`SimTime`]; the driver maps whatever clock it is given onto that
//! axis.  Production uses [`WallClock`] (monotonic nanoseconds since
//! the process's runtime epoch); the deterministic loopback drive and
//! the differential tests use [`VirtualClock`], which only moves when
//! the driver advances it to the next protocol deadline — the exact
//! discipline the discrete-event [`sdalloc_sap::Testbed`] applies, which
//! is what makes the two executions byte-comparable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sdalloc_sim::SimTime;

/// A monotonic time source readable from any thread.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's epoch, as a [`SimTime`].
    fn now(&self) -> SimTime;
}

/// Wall clock: monotonic time since construction.
///
/// Every agent thread and every reader thread of one runtime must share
/// a single `Arc<WallClock>` so snapshot staleness (`now − published_at`)
/// is measured on one axis.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// A clock that moves only when told to, shared by cloning.
///
/// `advance_to` is monotone (a stale advance never rewinds time), so
/// concurrent readers always observe a non-decreasing axis.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock at t = 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Move time forward to `t`; earlier values are ignored.
    pub fn advance_to(&self, t: SimTime) {
        self.nanos.fetch_max(t.as_nanos(), Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_never_rewinds() {
        let c = VirtualClock::new();
        c.advance_to(SimTime::from_millis(10));
        c.advance_to(SimTime::from_millis(5));
        assert_eq!(c.now(), SimTime::from_millis(10));
        let c2 = c.clone();
        c2.advance_to(SimTime::from_millis(20));
        assert_eq!(c.now(), SimTime::from_millis(20), "clones share the axis");
    }
}
