//! # sdalloc-telemetry — deterministic observability
//!
//! A zero-dependency instrumentation layer shared by every protocol
//! crate in the workspace.  Three pieces:
//!
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket histograms
//!   behind pre-registered integer ids.  The hot increment path is a
//!   branch plus a `Vec` index: no hashing, no allocation, no locks.
//! * [`TraceEvent`] — a fixed-size structured event (sim-time
//!   timestamp, node id, span, name, up to three `u64` arguments, all
//!   keys interned `&'static str`), admitted through a severity +
//!   counter-based sampling filter that costs a single branch when
//!   telemetry is disabled.
//! * [`FlightRecorder`] — a bounded ring of the most recent admitted
//!   events, rendered to JSON post-mortem when a chaos scenario,
//!   differential test or model-checker property fails.
//!
//! **Determinism contract.**  Nothing in this crate reads a wall
//! clock, draws randomness, or iterates a hash map while rendering.
//! Timestamps are caller-supplied simulation nanoseconds, sampling is
//! a deterministic modulo counter, and all JSON output walks vectors
//! in registration order — so for a fixed seed the rendered snapshot
//! is byte-identical across runs (the differential suite in
//! `tests/event_driven.rs` pins this).

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Event severity, ordered: `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// High-volume diagnostics; subject to sampling.
    Debug,
    /// Normal protocol milestones.
    Info,
    /// Degraded but self-healing conditions.
    Warn,
    /// Terminal or invariant-threatening conditions.
    Error,
}

impl Severity {
    /// Lower-case label used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One structured trace event.  Fixed-size: recording one never
/// allocates.  Unused argument slots hold `("", 0)` and are omitted
/// from JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time in nanoseconds (caller-supplied; never wall
    /// clock).
    pub t_nanos: u64,
    /// Severity; also the filter key.
    pub severity: Severity,
    /// Protocol phase the event belongs to (`"allocate"`,
    /// `"announce"`, `"clash"`, `"defend"`, `"cache"`, `"net"`, ...).
    pub span: &'static str,
    /// Event name within the span.
    pub name: &'static str,
    /// Up to three named integer arguments.
    pub args: [(&'static str, u64); 3],
}

impl TraceEvent {
    /// Render as a single-line JSON object.
    fn render_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"t_ns\": {}, \"sev\": \"{}\", \"span\": \"{}\", \"name\": \"{}\"",
            self.t_nanos,
            self.severity.as_str(),
            self.span,
            self.name
        );
        for (k, v) in self.args {
            if !k.is_empty() {
                let _ = write!(out, ", \"{k}\": {v}");
            }
        }
        out.push('}');
    }
}

/// No argument in this slot.
pub const NO_ARG: (&str, u64) = ("", 0);

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

/// A fixed-bucket histogram: `bounds` are ascending inclusive upper
/// bounds, with an implicit overflow bucket above the last.
#[derive(Debug, Clone)]
struct Histogram {
    name: &'static str,
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    // lint:allow(panic-reach): partition_point over bounds yields at most bounds.len(), and buckets holds bounds.len() + 1 entries
    fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }
}

/// Name-interned metrics store.  Registration (rare, setup-time) is a
/// linear name scan; increments (hot) are a `Vec` index.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    // lint:allow(unbounded-growth): metric registration happens at setup time against a static name set
    counters: Vec<(&'static str, u64)>,
    // lint:allow(unbounded-growth): metric registration happens at setup time against a static name set
    gauges: Vec<(&'static str, i64)>,
    // lint:allow(unbounded-growth): metric registration happens at setup time against a static name set
    histograms: Vec<Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register (or look up) a counter by name.  Idempotent.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i as u32);
        }
        self.counters.push((name, 0));
        CounterId((self.counters.len() - 1) as u32)
    }

    /// Register (or look up) a gauge by name.  Idempotent.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| *n == name) {
            return GaugeId(i as u32);
        }
        self.gauges.push((name, 0));
        GaugeId((self.gauges.len() - 1) as u32)
    }

    /// Register (or look up) a histogram by name with the given
    /// ascending upper bounds.  Idempotent; bounds are fixed by the
    /// first registration.
    // lint:allow(panic-reach): windows(2) chunks have exactly two elements
    pub fn histogram(&mut self, name: &'static str, bounds: &[u64]) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|h| h.name == name) {
            return HistogramId(i as u32);
        }
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        self.histograms.push(Histogram {
            name,
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        });
        HistogramId((self.histograms.len() - 1) as u32)
    }

    /// Add `by` to a counter.  O(1), allocation-free.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        if let Some(c) = self.counters.get_mut(id.0 as usize) {
            c.1 += by;
        }
    }

    /// Set a gauge to `value`.  O(1), allocation-free.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: i64) {
        if let Some(g) = self.gauges.get_mut(id.0 as usize) {
            g.1 = value;
        }
    }

    /// Record one sample in a histogram.  O(log buckets),
    /// allocation-free.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        if let Some(h) = self.histograms.get_mut(id.0 as usize) {
            h.observe(value);
        }
    }

    /// Current value of a counter (0 if unknown).
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters.get(id.0 as usize).map_or(0, |c| c.1)
    }

    /// Current value of a counter looked up by name (0 if unknown).
    pub fn counter_by_name(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |c| c.1)
    }

    /// Current value of a gauge looked up by name (0 if unknown).
    pub fn gauge_by_name(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |g| g.1)
    }

    /// Fold another registry into this one: counters and histogram
    /// buckets add, gauges take the other's value.  Names absent here
    /// are registered in the other's order, so merging is
    /// deterministic.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for &(name, v) in &other.counters {
            let id = self.counter(name);
            self.inc(id, v);
        }
        for &(name, v) in &other.gauges {
            let id = self.gauge(name);
            self.set(id, v);
        }
        for h in &other.histograms {
            let id = self.histogram(h.name, &h.bounds);
            if let Some(mine) = self.histograms.get_mut(id.0 as usize) {
                if mine.bounds == h.bounds {
                    for (m, o) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *m += o;
                    }
                    mine.count += h.count;
                    mine.sum = mine.sum.saturating_add(h.sum);
                }
            }
        }
    }

    /// Render as a JSON object fragment (three keys: `counters`,
    /// `gauges`, `histograms`), indented by `pad` spaces.  Walks
    /// registration order — deterministic for a fixed code path.
    pub fn render_json(&self, pad: usize) -> String {
        let p = " ".repeat(pad);
        let mut s = String::new();
        let _ = write!(s, "{p}\"counters\": {{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}\"{name}\": {v}");
        }
        s.push_str("},\n");
        let _ = write!(s, "{p}\"gauges\": {{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}\"{name}\": {v}");
        }
        s.push_str("},\n");
        let _ = write!(s, "{p}\"histograms\": {{");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            let _ = write!(
                s,
                "{sep}\"{}\": {{\"bounds\": [{}], \"buckets\": [{}], \"count\": {}, \"sum\": {}}}",
                h.name,
                bounds.join(", "),
                buckets.join(", "),
                h.count,
                h.sum
            );
        }
        s.push('}');
        s
    }
}

/// Bounded ring of the most recent admitted trace events.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `cap` events.
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            ring: VecDeque::with_capacity(cap),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if full.
    // lint:allow(wire-taint): fixed-capacity ring — the oldest event is evicted at cap before the push, so wire-paced events cannot grow it
    pub fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events in arrival order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }
}

/// Admission filter for trace events: a minimum severity plus
/// deterministic counter-based sampling of `Debug` events (every
/// `sample_every`-th `Debug` event is admitted; `Info` and above are
/// never sampled away).
#[derive(Debug, Clone)]
pub struct TraceFilter {
    /// Events below this severity are discarded.
    pub min_severity: Severity,
    /// Keep one in `sample_every` `Debug` events (1 = keep all).
    pub sample_every: u32,
    debug_seen: u64,
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter {
            min_severity: Severity::Debug,
            sample_every: 1,
            debug_seen: 0,
        }
    }
}

impl TraceFilter {
    /// Whether an event of `sev` should be admitted, advancing the
    /// sampling counter for `Debug` events.
    pub fn admit(&mut self, sev: Severity) -> bool {
        if sev < self.min_severity {
            return false;
        }
        if sev == Severity::Debug && self.sample_every > 1 {
            let keep = self.debug_seen.is_multiple_of(u64::from(self.sample_every));
            self.debug_seen += 1;
            return keep;
        }
        true
    }
}

/// Default flight-recorder capacity (events retained per node).
pub const DEFAULT_FLIGHT_CAP: usize = 256;

/// Per-node telemetry bundle: metrics + trace filter + flight
/// recorder + identity (node id, seed) stamped into every rendering.
///
/// A disabled bundle (`Telemetry::disabled()` or
/// [`Telemetry::set_enabled`]`(false)`) short-circuits every record
/// path on a single branch; registrations still hand out valid ids so
/// instrumented code needs no conditional structure.
#[derive(Debug, Clone)]
pub struct Telemetry {
    enabled: bool,
    node: u32,
    seed: u64,
    /// The metrics store.
    pub metrics: MetricsRegistry,
    recorder: FlightRecorder,
    filter: TraceFilter,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(0, 0)
    }
}

impl Telemetry {
    /// An enabled bundle for node `node` under seed `seed`.
    pub fn new(node: u32, seed: u64) -> Self {
        Telemetry {
            enabled: true,
            node,
            seed,
            metrics: MetricsRegistry::new(),
            recorder: FlightRecorder::new(DEFAULT_FLIGHT_CAP),
            filter: TraceFilter::default(),
        }
    }

    /// A disabled bundle: every record path is a single-branch no-op.
    pub fn disabled() -> Self {
        let mut t = Telemetry::new(0, 0);
        t.enabled = false;
        t
    }

    /// Whether recording is live.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording on or off (registrations survive either way).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Stamp the identity rendered into snapshots and dumps.
    pub fn set_identity(&mut self, node: u32, seed: u64) {
        self.node = node;
        self.seed = seed;
    }

    /// The node id stamped into output.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Adjust the trace admission filter.
    pub fn set_filter(&mut self, min_severity: Severity, sample_every: u32) {
        self.filter.min_severity = min_severity;
        self.filter.sample_every = sample_every.max(1);
    }

    /// Register a counter (valid even while disabled).
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.metrics.counter(name)
    }

    /// Register a gauge (valid even while disabled).
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        self.metrics.gauge(name)
    }

    /// Register a histogram (valid even while disabled).
    pub fn histogram(&mut self, name: &'static str, bounds: &[u64]) -> HistogramId {
        self.metrics.histogram(name, bounds)
    }

    /// Increment a counter by 1.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        if self.enabled {
            self.metrics.inc(id, 1);
        }
    }

    /// Increment a counter by `by`.
    #[inline]
    pub fn inc_by(&mut self, id: CounterId, by: u64) {
        if self.enabled {
            self.metrics.inc(id, by);
        }
    }

    /// Set a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: i64) {
        if self.enabled {
            self.metrics.set(id, value);
        }
    }

    /// Record one histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        if self.enabled {
            self.metrics.observe(id, value);
        }
    }

    /// Record a trace event into the flight recorder, subject to the
    /// admission filter.  `t_nanos` is simulation time.
    #[inline]
    pub fn record(
        &mut self,
        t_nanos: u64,
        severity: Severity,
        span: &'static str,
        name: &'static str,
        args: [(&'static str, u64); 3],
    ) {
        if !self.enabled || !self.filter.admit(severity) {
            return;
        }
        self.recorder.push(TraceEvent {
            t_nanos,
            severity,
            span,
            name,
            args,
        });
    }

    /// Read access to the flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Fold another bundle's metrics into this one (identity and
    /// recorder are untouched).
    pub fn merge_metrics_from(&mut self, other: &Telemetry) {
        self.metrics.merge_from(&other.metrics);
    }

    /// Deterministic metrics snapshot: identity + counters + gauges +
    /// histograms, as a standalone JSON object.
    pub fn snapshot_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = write!(
            s,
            "  \"node\": {},\n  \"seed\": {},\n",
            self.node, self.seed
        );
        s.push_str(&self.metrics.render_json(2));
        s.push_str("\n}\n");
        s
    }

    /// Post-mortem dump: identity + `reason` + metrics + the retained
    /// flight-recorder events, as a standalone JSON object.
    pub fn dump_json(&self, reason: &str) -> String {
        let mut s = String::from("{\n");
        let _ = write!(
            s,
            "  \"flight_recorder\": true,\n  \"node\": {},\n  \"seed\": {},\n  \"reason\": \"{}\",\n  \"dropped\": {},\n",
            self.node,
            self.seed,
            reason.replace('"', "'"),
            self.recorder.dropped
        );
        s.push_str(&self.metrics.render_json(2));
        s.push_str(",\n  \"events\": [\n");
        let n = self.recorder.len();
        for (i, ev) in self.recorder.events().enumerate() {
            s.push_str("    ");
            ev.render_json(&mut s);
            s.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_is_idempotent() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        assert_eq!(a, b);
        m.inc(a, 2);
        m.inc(b, 3);
        assert_eq!(m.counter_value(a), 5);
        assert_eq!(m.counter_by_name("x"), 5);
        assert_eq!(m.counter_by_name("missing"), 0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[10, 100]);
        for v in [0, 10, 11, 100, 101, 5_000] {
            m.observe(h, v);
        }
        let rendered = m.render_json(0);
        // buckets: <=10 -> 2, <=100 -> 2, overflow -> 2
        assert!(rendered.contains("\"buckets\": [2, 2, 2]"), "{rendered}");
        assert!(rendered.contains("\"count\": 6"), "{rendered}");
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        let ca = a.counter("c");
        a.inc(ca, 1);
        let ha = a.histogram("h", &[5]);
        a.observe(ha, 3);
        let mut b = MetricsRegistry::new();
        let cb = b.counter("c");
        b.inc(cb, 4);
        let hb = b.histogram("h", &[5]);
        b.observe(hb, 9);
        let onlyb = b.counter("only_b");
        b.inc(onlyb, 7);
        a.merge_from(&b);
        assert_eq!(a.counter_by_name("c"), 5);
        assert_eq!(a.counter_by_name("only_b"), 7);
        let rendered = a.render_json(0);
        assert!(rendered.contains("\"buckets\": [1, 1]"), "{rendered}");
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut t = Telemetry::disabled();
        let c = t.counter("c");
        t.inc(c);
        t.record(1, Severity::Error, "s", "n", [NO_ARG; 3]);
        assert_eq!(t.metrics.counter_value(c), 0);
        assert!(t.recorder().is_empty());
    }

    #[test]
    fn flight_recorder_is_bounded() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.push(TraceEvent {
                t_nanos: i,
                severity: Severity::Info,
                span: "s",
                name: "n",
                args: [NO_ARG; 3],
            });
        }
        assert_eq!(r.len(), 3);
        let ts: Vec<u64> = r.events().map(|e| e.t_nanos).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        assert_eq!(r.dropped, 2);
    }

    #[test]
    fn severity_filter_and_debug_sampling() {
        let mut t = Telemetry::new(0, 0);
        t.set_filter(Severity::Info, 1);
        t.record(1, Severity::Debug, "s", "dropped", [NO_ARG; 3]);
        t.record(2, Severity::Info, "s", "kept", [NO_ARG; 3]);
        assert_eq!(t.recorder().len(), 1);

        let mut t = Telemetry::new(0, 0);
        t.set_filter(Severity::Debug, 4);
        for i in 0..8 {
            t.record(i, Severity::Debug, "s", "d", [NO_ARG; 3]);
        }
        // Every 4th debug event admitted: indices 0 and 4.
        assert_eq!(t.recorder().len(), 2);
        // Info events bypass sampling entirely.
        t.record(99, Severity::Info, "s", "i", [NO_ARG; 3]);
        assert_eq!(t.recorder().len(), 3);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_identity_stamped() {
        let build = || {
            let mut t = Telemetry::new(7, 42);
            let c = t.counter("alloc.requests");
            t.inc(c);
            t.inc(c);
            let g = t.gauge("cache.size");
            t.set(g, -3);
            let h = t.histogram("defend.delay_ms", &[100, 1000]);
            t.observe(h, 250);
            t
        };
        let a = build().snapshot_json();
        let b = build().snapshot_json();
        assert_eq!(a, b);
        assert!(a.contains("\"node\": 7"), "{a}");
        assert!(a.contains("\"seed\": 42"), "{a}");
        assert!(a.contains("\"alloc.requests\": 2"), "{a}");
        assert!(a.contains("\"cache.size\": -3"), "{a}");
    }

    #[test]
    fn dump_json_contains_events_and_reason() {
        let mut t = Telemetry::new(1, 9);
        t.record(
            5,
            Severity::Warn,
            "clash",
            "third_party_armed",
            [("addr", 17), ("fire_ms", 230), NO_ARG],
        );
        let d = t.dump_json("forced \"failure\"");
        assert!(d.contains("\"flight_recorder\": true"), "{d}");
        assert!(d.contains("\"reason\": \"forced 'failure'\""), "{d}");
        assert!(d.contains("\"name\": \"third_party_armed\""), "{d}");
        assert!(d.contains("\"addr\": 17"), "{d}");
        assert!(!d.contains("\"\": 0"), "empty arg slots leak: {d}");
    }
}
