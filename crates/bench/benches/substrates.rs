//! Micro-benchmarks of the substrate layers: routing, scope queries,
//! SAP wire codec, SDP parsing and per-allocation latency.  These are
//! the inner loops every experiment runs millions of times, so they are
//! tracked separately from the figure-level benches.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sdalloc_bench::bench_mbone;
use sdalloc_core::{
    AdaptiveIpr, Addr, AddrSpace, Allocator, InformedRandomAllocator, RandomAllocator, StaticIpr,
    View, VisibleSession,
};
use sdalloc_sap::sdp::{Media, Origin, SessionDescription};
use sdalloc_sap::wire::{msg_id_hash, SapPacket};
use sdalloc_sim::SimRng;
use sdalloc_topology::routing::{SourceTree, SptCache};
use sdalloc_topology::{NodeId, Scope, ScopeCache};

fn bench_routing(c: &mut Criterion) {
    let topo = bench_mbone(1_000);
    let mut group = c.benchmark_group("routing");
    group.sample_size(20);
    group.bench_function("dijkstra_source_tree/1000_nodes", |b| {
        b.iter(|| SourceTree::compute(black_box(&topo), NodeId(0)))
    });
    let tree = SourceTree::compute(&topo, NodeId(0));
    group.bench_function("reach_set/ttl127", |b| {
        b.iter(|| tree.reach_set(black_box(127)))
    });
    group.bench_function("spt_cache_warm_hit", |b| {
        let mut cache = SptCache::new(topo.clone());
        cache.tree(NodeId(5));
        b.iter(|| cache.tree(black_box(NodeId(5))).hops[17])
    });
    group.finish();
}

fn bench_scope_queries(c: &mut Criterion) {
    let topo = bench_mbone(1_000);
    let mut cache = ScopeCache::new(topo);
    let a = Scope::new(NodeId(10), 63);
    let b_scope = Scope::new(NodeId(900), 127);
    // Warm the cache so we measure the steady-state query cost.
    cache.zones_overlap(a, b_scope);
    let mut group = c.benchmark_group("scope");
    group.bench_function("zones_overlap_warm", |b| {
        b.iter(|| cache.zones_overlap(black_box(a), black_box(b_scope)))
    });
    group.bench_function("sees_warm", |b| {
        b.iter(|| cache.sees(black_box(NodeId(500)), black_box(a)))
    });
    group.finish();
}

fn sample_sdp() -> SessionDescription {
    SessionDescription {
        origin: Origin {
            username: "mjh".into(),
            session_id: 3_086_943_492,
            version: 1,
            address: std::net::Ipv4Addr::new(128, 9, 160, 45),
        },
        name: "ISI seminar".into(),
        info: Some("Weekly systems seminar".into()),
        group: std::net::Ipv4Addr::new(224, 2, 130, 7),
        ttl: 127,
        start: 0,
        stop: 0,
        media: vec![
            Media {
                kind: "audio".into(),
                port: 49_170,
                proto: "RTP/AVP".into(),
                format: 0,
            },
            Media {
                kind: "video".into(),
                port: 51_372,
                proto: "RTP/AVP".into(),
                format: 31,
            },
        ],
    }
}

fn bench_sap_codec(c: &mut Criterion) {
    let desc = sample_sdp();
    let text = desc.format();
    let pkt = SapPacket::announce(
        std::net::Ipv4Addr::new(128, 9, 160, 45),
        msg_id_hash(&text),
        text.clone(),
    );
    let wire = pkt.encode();
    let mut group = c.benchmark_group("sap");
    group.bench_function("sdp_format", |b| b.iter(|| black_box(&desc).format()));
    group.bench_function("sdp_parse", |b| {
        b.iter(|| SessionDescription::parse(black_box(&text)).unwrap())
    });
    group.bench_function("packet_encode", |b| b.iter(|| black_box(&pkt).encode()));
    group.bench_function("packet_decode", |b| {
        b.iter(|| SapPacket::decode(black_box(&wire)).unwrap())
    });
    group.finish();
}

fn bench_allocators(c: &mut Criterion) {
    let space = AddrSpace::abstract_space(32_768);
    // A realistic mixed view: 2 000 visible sessions across the
    // canonical TTLs.
    let mut rng = SimRng::new(3);
    let ttls = [1u8, 15, 31, 47, 63, 127, 191];
    let sessions: Vec<VisibleSession> = (0..2_000)
        .map(|_| VisibleSession::new(Addr(rng.below(32_768) as u32), ttls[rng.index(ttls.len())]))
        .collect();
    let mut group = c.benchmark_group("allocators");
    for (name, alg) in [
        ("R", Box::new(RandomAllocator) as Box<dyn Allocator>),
        ("IR", Box::new(InformedRandomAllocator)),
        ("IPR7", Box::new(StaticIpr::seven_band())),
        ("AIPR1", Box::new(AdaptiveIpr::aipr1())),
        ("AIPRH", Box::new(AdaptiveIpr::hybrid())),
    ] {
        group.bench_function(format!("allocate_2000_visible/{name}"), |b| {
            b.iter_batched(
                || (SimRng::new(9), sessions.clone()),
                |(mut rng, sess)| {
                    let view = View::new(&sess);
                    alg.allocate(&space, black_box(127), &view, &mut rng)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    substrates,
    bench_routing,
    bench_scope_queries,
    bench_sap_codec,
    bench_allocators
);
criterion_main!(substrates);
