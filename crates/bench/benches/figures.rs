//! One benchmark group per paper figure: each bench regenerates the
//! figure's workload at a reduced, timed scale.  The point is twofold —
//! regression-tracking the experiment kernels, and giving `cargo bench`
//! a one-command way to exercise every evaluation path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sdalloc_bench::bench_mbone;
use sdalloc_core::analytic::{birthday_clash_probability, eq1_allocations_at_half};
use sdalloc_core::AddrSpace;
use sdalloc_core::{AdaptiveIpr, InformedRandomAllocator, RandomAllocator, StaticIpr};
use sdalloc_experiments::fill::fill_until_clash;
use sdalloc_experiments::steady::{steady_state_clash_probability, Replacement};
use sdalloc_experiments::world::World;
use sdalloc_rr::analytic::{expected_responses_exponential, expected_responses_uniform};
use sdalloc_rr::sim::{run_many, DelayDist, Population, RrParams, TreeMode};
use sdalloc_sim::{SimDuration, SimRng};
use sdalloc_topology::doar::{generate, DoarParams};
use sdalloc_topology::hopcount::ttl_table;
use sdalloc_topology::workload::TtlDistribution;

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4/birthday_curve_10000x400", |b| {
        b.iter(|| {
            let mut last = 0.0;
            for k in (0..=400).step_by(10) {
                last = birthday_clash_probability(black_box(10_000), k);
            }
            last
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    let topo = bench_mbone(200);
    let dist = TtlDistribution::ds4();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for (name, alg) in [
        (
            "R",
            Box::new(RandomAllocator) as Box<dyn sdalloc_core::Allocator>,
        ),
        ("IR", Box::new(InformedRandomAllocator)),
        ("IPR3", Box::new(StaticIpr::three_band())),
        ("IPR7", Box::new(StaticIpr::seven_band())),
    ] {
        let mut world = World::new(topo.clone(), AddrSpace::abstract_space(200));
        group.bench_function(format!("fill_until_clash/{name}"), |b| {
            let mut rng = SimRng::new(7);
            b.iter(|| fill_until_clash(&mut world, alg.as_ref(), &dist, &mut rng, 1_600))
        });
    }
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6/eq1_crossing_search", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i_frac in [0.01, 0.001, 0.0001, 0.00001] {
                total += eq1_allocations_at_half(black_box(100_000.0), i_frac);
            }
            total
        })
    });
}

fn bench_fig10(c: &mut Criterion) {
    let topo = bench_mbone(300);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("hop_count_table_300_nodes", |b| {
        b.iter(|| ttl_table(black_box(&topo), 1))
    });
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let topo = bench_mbone(150);
    let dist = TtlDistribution::ds4();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    for (name, alg) in [
        (
            "AIPR1",
            Box::new(AdaptiveIpr::aipr1()) as Box<dyn sdalloc_core::Allocator>,
        ),
        ("AIPR3", Box::new(AdaptiveIpr::aipr3())),
        ("AIPRH", Box::new(AdaptiveIpr::hybrid())),
        ("IPR7", Box::new(StaticIpr::seven_band())),
    ] {
        group.bench_function(format!("steady_state_p/{name}"), |b| {
            b.iter(|| {
                steady_state_clash_probability(
                    &topo,
                    alg.as_ref(),
                    &dist,
                    black_box(200),
                    30,
                    Replacement::Random,
                    2,
                    9,
                )
            })
        });
    }
    group.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let topo = bench_mbone(150);
    let dist = TtlDistribution::ds4();
    let alg = AdaptiveIpr::aipr1();
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("steady_state_p_pinned/AIPR1", |b| {
        b.iter(|| {
            steady_state_clash_probability(
                &topo,
                &alg,
                &dist,
                black_box(200),
                30,
                Replacement::SameSiteAndTtl,
                2,
                11,
            )
        })
    });
    group.finish();
}

fn bench_fig14_18(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_18");
    group.bench_function("uniform_surface", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in [200u64, 1_600, 12_800, 51_200] {
                for d in [4u64, 16, 64, 256, 1_024] {
                    acc += expected_responses_uniform(n, d);
                }
            }
            acc
        })
    });
    group.bench_function("exponential_surface", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in [200u64, 1_600, 12_800, 51_200] {
                for d in [4u64, 16, 64, 256, 1_024] {
                    acc += expected_responses_exponential(n, d);
                }
            }
            acc
        })
    });
    group.finish();
}

fn bench_fig15_16(c: &mut Criterion) {
    let topo = generate(&DoarParams::new(400, 21));
    let mut group = c.benchmark_group("fig15_16");
    group.sample_size(10);
    for (name, tree) in [
        ("spt", TreeMode::SourceTrees),
        ("shared", TreeMode::SharedTree),
    ] {
        group.bench_function(format!("rr_round/{name}/400_sites"), |b| {
            let params = RrParams {
                tree,
                dist: DelayDist::Uniform,
                d1: SimDuration::ZERO,
                d2: SimDuration::from_secs_f64(3.2),
                rtt: SimDuration::from_millis(200),
                jitter_per_hop: None,
                population: Population::All,
            };
            b.iter_batched(
                || SimRng::new(5),
                |mut rng| run_many(&topo, &params, 2, &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_fig19(c: &mut Criterion) {
    let topo = generate(&DoarParams::new(400, 23));
    let mut group = c.benchmark_group("fig19");
    group.sample_size(10);
    for (name, dist) in [
        ("uniform", DelayDist::Uniform),
        ("exponential", DelayDist::Exponential),
    ] {
        group.bench_function(format!("tradeoff_point/{name}"), |b| {
            let params = RrParams {
                tree: TreeMode::SourceTrees,
                dist,
                d1: SimDuration::ZERO,
                d2: SimDuration::from_secs_f64(12.8),
                rtt: SimDuration::from_millis(200),
                jitter_per_hop: Some(SimDuration::from_millis(10)),
                population: Population::All,
            };
            b.iter_batched(
                || SimRng::new(5),
                |mut rng| run_many(&topo, &params, 2, &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    figures,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig10,
    bench_fig12,
    bench_fig13,
    bench_fig14_18,
    bench_fig15_16,
    bench_fig19
);
criterion_main!(figures);
