//! Ablation benches for the design choices called out in DESIGN.md §5.
//!
//! Each group sweeps one knob of the adaptive allocator (or the
//! announcement schedule) and *reports the quality metric through the
//! bench label's workload*, while Criterion tracks the cost.  Run with
//! `cargo bench --bench ablations`; the printed `quality:` lines give
//! the metric for each setting so cost and quality can be read together.

use criterion::{criterion_group, criterion_main, Criterion};

use sdalloc_bench::bench_mbone;
use sdalloc_core::adaptive::{AdaptiveIpr, BandMap};
use sdalloc_core::{PartitionMap, StaticIpr};
use sdalloc_experiments::steady::{steady_state_clash_probability, Replacement};
use sdalloc_sap::schedule::BackoffSchedule;
use sdalloc_sim::SimDuration;
use sdalloc_topology::workload::TtlDistribution;

/// Occupancy-target ablation: the paper picks 67 % from Figure 6; we
/// sweep 50/67/85 %.
fn ablate_occupancy(c: &mut Criterion) {
    let topo = bench_mbone(150);
    let dist = TtlDistribution::ds4();
    let mut group = c.benchmark_group("ablate_occupancy");
    group.sample_size(10);
    for occ in [0.50f64, 0.67, 0.85] {
        let alg = AdaptiveIpr::new(
            BandMap::Partition(Box::new(PartitionMap::paper_default())),
            0.20,
            occ,
            None,
            format!("occ-{occ}"),
        );
        let p =
            steady_state_clash_probability(&topo, &alg, &dist, 300, 60, Replacement::Random, 6, 31);
        println!("quality: occupancy={occ} p_clash(n=60,space=300)={p:.2}");
        group.bench_function(format!("occupancy_{occ}"), |b| {
            b.iter(|| {
                steady_state_clash_probability(
                    &topo,
                    &alg,
                    &dist,
                    300,
                    30,
                    Replacement::Random,
                    2,
                    33,
                )
            })
        });
    }
    group.finish();
}

/// Partition-margin ablation: margin 1/2/3 → 34/55/73 partitions.
fn ablate_margin(c: &mut Criterion) {
    let topo = bench_mbone(150);
    let dist = TtlDistribution::ds4();
    let mut group = c.benchmark_group("ablate_margin");
    group.sample_size(10);
    for margin in [1u32, 2, 3] {
        let map = PartitionMap::new(margin);
        let partitions = map.len();
        let alg = AdaptiveIpr::new(
            BandMap::Partition(Box::new(map)),
            0.20,
            0.67,
            None,
            format!("margin-{margin}"),
        );
        let p =
            steady_state_clash_probability(&topo, &alg, &dist, 300, 60, Replacement::Random, 6, 37);
        println!("quality: margin={margin} partitions={partitions} p_clash(n=60,space=300)={p:.2}");
        group.bench_function(format!("margin_{margin}"), |b| {
            b.iter(|| {
                steady_state_clash_probability(
                    &topo,
                    &alg,
                    &dist,
                    300,
                    30,
                    Replacement::Random,
                    2,
                    39,
                )
            })
        });
    }
    group.finish();
}

/// Gap-fraction ablation beyond the paper's four points.
fn ablate_gap_fraction(c: &mut Criterion) {
    let topo = bench_mbone(150);
    let dist = TtlDistribution::ds4();
    let mut group = c.benchmark_group("ablate_gap");
    group.sample_size(10);
    for gap in [0.0f64, 0.2, 0.4, 0.6, 0.8] {
        let alg = AdaptiveIpr::new(
            BandMap::Partition(Box::new(PartitionMap::paper_default())),
            gap,
            0.67,
            None,
            format!("gap-{gap}"),
        );
        let p =
            steady_state_clash_probability(&topo, &alg, &dist, 400, 60, Replacement::Random, 6, 41);
        println!("quality: gap={gap} p_clash(n=60,space=400)={p:.2}");
        group.bench_function(format!("gap_{gap}"), |b| {
            b.iter(|| {
                steady_state_clash_probability(
                    &topo,
                    &alg,
                    &dist,
                    400,
                    30,
                    Replacement::Random,
                    2,
                    43,
                )
            })
        });
    }
    group.finish();
}

/// Back-off schedule ablation: constant 10-minute repeats vs the
/// paper's exponential-from-5 s, measured by the effective-delay metric
/// that drives Figure 6's invisible-session fraction.
fn ablate_backoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_backoff");
    let schedules = [
        (
            "constant_600s",
            BackoffSchedule::constant(SimDuration::from_mins(10)),
        ),
        ("exponential_5s", BackoffSchedule::default()),
    ];
    for (name, sched) in &schedules {
        let eff = sched
            .effective_initial_delay(SimDuration::from_millis(200), 0.02)
            .as_secs_f64();
        println!("quality: schedule={name} effective_delay={eff:.2}s");
        group.bench_function(format!("schedule_walk/{name}"), |b| {
            b.iter(|| {
                // Cost of computing a day's worth of announcement times.
                let mut t = sdalloc_sim::SimTime::ZERO;
                for n in 0..200u32 {
                    t = sched.nth_time(sdalloc_sim::SimTime::ZERO, n);
                }
                t
            })
        });
    }
    group.finish();
}

/// Static-band control for the same quality metric, for context.
fn ablate_static_controls(c: &mut Criterion) {
    let topo = bench_mbone(150);
    let dist = TtlDistribution::ds4();
    let mut group = c.benchmark_group("ablate_static");
    group.sample_size(10);
    for (name, alg) in [
        ("IPR3", StaticIpr::three_band()),
        ("IPR7", StaticIpr::seven_band()),
    ] {
        let p =
            steady_state_clash_probability(&topo, &alg, &dist, 300, 60, Replacement::Random, 6, 47);
        println!("quality: control={name} p_clash(n=60,space=300)={p:.2}");
        group.bench_function(format!("control_{name}"), |b| {
            b.iter(|| {
                steady_state_clash_probability(
                    &topo,
                    &alg,
                    &dist,
                    300,
                    30,
                    Replacement::Random,
                    2,
                    49,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    ablate_occupancy,
    ablate_margin,
    ablate_gap_fraction,
    ablate_backoff,
    ablate_static_controls
);
criterion_main!(ablations);
