//! # sdalloc-bench — Criterion benchmarks, one per paper table/figure
//!
//! The library itself only hosts shared helpers; the benchmark targets
//! live in `benches/`:
//!
//! | Bench target | Covers |
//! |---|---|
//! | `figures` | per-figure workloads: fig4, fig5, fig6, fig10, fig12, fig13, fig14, fig15/16, fig18, fig19 |
//! | `ablations` | DESIGN.md §5: occupancy target, partition margin, back-off schedule, gap fraction |
//! | `substrates` | micro-benchmarks: Dijkstra/reach sets, SAP codec, SDP parse, per-allocation latency |

use sdalloc_topology::mbone::{MboneMap, MboneParams};
use sdalloc_topology::Topology;

/// A small Mbone map shared by bench targets (kept small so Criterion
/// iterations stay in the milliseconds).
pub fn bench_mbone(nodes: usize) -> Topology {
    MboneMap::generate(&MboneParams {
        seed: 42,
        target_nodes: nodes,
    })
    .topo
}
