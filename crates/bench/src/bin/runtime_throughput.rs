//! `runtime_throughput` — concurrent read-path benchmark for the
//! production runtime.
//!
//! Measures the three rates the runtime subsystem exists to provide:
//!
//! * **ingest** — announcements/second through the directory's full
//!   receive path (`on_packet`: parse, clash probe, cache refresh),
//!   cold (populating an empty cache) and steady-state (refreshing a
//!   cache already holding the full working set);
//! * **queries** — aggregate queries/second for 1..N reader threads
//!   running the lock-free snapshot query mix (`group_in_use` probe,
//!   keyed `get`, periodic keyword scan) while the writer keeps
//!   ingesting and publishing — the scaling curve is the point: readers
//!   never touch the writer's lock, so aggregate throughput should grow
//!   with reader count when cores are available;
//! * **staleness** — for every reader query, how far behind the
//!   writer's clock the loaded snapshot was (p50/p99), i.e. the price
//!   of the epoch-swapped read path versus querying the directory
//!   directly.
//!
//! Run modes:
//! * `--smoke` — 10k cached sessions, sub-second phases; prints the
//!   table and exits non-zero if the single-reader query rate or the
//!   combined-phase writer ingest rate falls below its floor, if the
//!   p99 staleness exceeds its ceiling, or if the reader query path
//!   performs *any* heap allocation (counting-allocator audit).  Used
//!   by `scripts/check.sh`.
//! * full (no flag) — 100k cached sessions, multi-second phases,
//!   reader counts 1/2/4; writes `results_full/BENCH_runtime.json`.
//!
//! The 4-reader ≥ 3× single-reader scaling gate only applies when the
//! host actually has cores for the threads (`available_parallelism` ≥
//! 6: four readers + writer + watchdog); on smaller hosts the ratio is
//! still measured and recorded, with `scaling_gate_applied: false`, so
//! the JSON never claims parallel speedup a single-core CI box cannot
//! exhibit.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fs;
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sdalloc_core::{AddrSpace, InformedRandomAllocator};
use sdalloc_runtime::{Clock, SnapshotCadence, SnapshotHandle, SnapshotPublisher, WallClock};
use sdalloc_sap::directory::{DirectoryConfig, SessionDirectory};
use sdalloc_sap::sdp::{Media, Origin, SessionDescription};
use sdalloc_sap::wire::SapPacket;
use sdalloc_sim::{SimDuration, SimRng};

/// Counting allocator shim: forwards to the system allocator and
/// tallies allocation events, so the smoke gate can assert the reader
/// query path performs no heap allocation.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter is a relaxed
// atomic with no effect on allocation behaviour.  The workspace denies
// `unsafe_code`, but a counting allocator cannot be written without
// implementing the unsafe `GlobalAlloc` trait — the exemption is
// scoped to this bench-only shim and adds no unsafe of its own.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Process peak RSS in kilobytes (`VmHWM` from `/proc/self/status`).
fn peak_rss_kb() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

struct Knobs {
    /// Working-set size the writer holds cached throughout.
    sessions: usize,
    /// Steady-state refreshes for the solo ingest measurement.
    solo_refreshes: usize,
    /// Wall-clock length of each combined (writer + readers) phase.
    phase: Duration,
    /// Reader-thread counts to sweep.
    reader_counts: Vec<usize>,
    /// Snapshot publication cadence for the writer.
    cadence: SnapshotCadence,
}

fn media() -> Vec<Media> {
    vec![Media {
        kind: "audio".into(),
        port: 5004,
        proto: "RTP/AVP".into(),
        format: 0,
    }]
}

/// Session `i`'s description: distinct origin per session, group drawn
/// from the space round-robin.
fn session(i: usize, space: &AddrSpace) -> SessionDescription {
    let group = u32::from(space.base()) + (i as u32 % space.size());
    SessionDescription {
        origin: Origin {
            username: "-".into(),
            session_id: i as u64,
            version: 1,
            address: Ipv4Addr::from(0x0a00_0000 + i as u32),
        },
        name: format!("s{i}"),
        info: None,
        group: Ipv4Addr::from(group),
        ttl: 63,
        start: 0,
        stop: 0,
        media: media(),
    }
}

/// Wire-format announcement fixtures, built up front so the timed
/// windows see only the receive path.
fn packets(n: usize, space: &AddrSpace) -> Vec<SapPacket> {
    (0..n)
        .map(|i| {
            let d = session(i, space);
            SapPacket::announce(d.origin.address, d.origin.session_id as u16, d.format())
        })
        .collect()
}

/// p50/p99 of a sample set.  Sorts in place; (0, 0) when empty.
fn percentiles(samples: &mut [u64]) -> (u64, u64) {
    if samples.is_empty() {
        return (0, 0);
    }
    samples.sort_unstable();
    let pick = |p: usize| samples[(samples.len() - 1) * p / 100];
    (pick(50), pick(99))
}

/// One reader iteration: the query mix a deployed directory serves —
/// a group-in-use probe and a keyed lookup every time, a keyword scan
/// every 64th.  Returns a hit count to keep the optimiser honest, and
/// pushes a staleness sample.
fn reader_pass(
    reader: &mut sdalloc_runtime::SnapshotReader,
    clock: &WallClock,
    space: &AddrSpace,
    rng: &mut SimRng,
    iter: usize,
    staleness_ns: &mut Vec<u64>,
) -> usize {
    let snap = reader.load();
    if staleness_ns.len() < 1 << 20 {
        staleness_ns.push(snap.staleness(clock.now()).as_nanos());
    }
    let group = Ipv4Addr::from(u32::from(space.base()) + rng.below(u64::from(space.size())) as u32);
    let mut hits = usize::from(snap.group_in_use(group));
    let probe = rng.below(1 << 20);
    hits += usize::from(
        snap.get(Ipv4Addr::from(0x0a00_0000 + probe as u32), probe)
            .is_some(),
    );
    if iter.is_multiple_of(64) {
        hits += snap.matching("s1").count();
    }
    hits
}

/// What one combined phase measured.
struct PhaseRow {
    readers: usize,
    reader_qps: f64,
    writer_announce_per_sec: f64,
    snapshots_published: u64,
    staleness_p50_ms: f64,
    staleness_p99_ms: f64,
}

/// Run writer + `readers` reader threads for `phase` wall-clock time.
/// The writer keeps refreshing the working set through `on_packet` and
/// publishing on its cadence; ownership of the directory/publisher
/// moves through the writer thread and back.
#[allow(clippy::too_many_arguments)]
fn combined_phase(
    mut dir: SessionDirectory,
    mut publisher: SnapshotPublisher,
    handle: &SnapshotHandle,
    clock: &Arc<WallClock>,
    pkts: &Arc<Vec<SapPacket>>,
    space: &AddrSpace,
    readers: usize,
    phase: Duration,
) -> (SessionDirectory, SnapshotPublisher, PhaseRow) {
    let published_before = publisher.stats().published;
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let stop = Arc::clone(&stop);
        let clock = Arc::clone(clock);
        let pkts = Arc::clone(pkts);
        std::thread::spawn(move || {
            let mut rng = SimRng::new(31);
            let mut announced = 0u64;
            let mut cursor = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let now = clock.now();
                for _ in 0..32 {
                    let pkt = &pkts[cursor];
                    cursor = (cursor + 1) % pkts.len();
                    let (out, _) = dir.on_packet(now, pkt, &mut rng);
                    black_box(out.len());
                    announced += 1;
                }
                publisher.note_updates(32);
                publisher.maybe_publish(clock.now(), &dir);
            }
            publisher.publish(clock.now(), &dir);
            (dir, publisher, announced)
        })
    };

    let reader_threads: Vec<_> = (0..readers)
        .map(|r| {
            let mut reader = handle.reader();
            let stop = Arc::clone(&stop);
            let clock = Arc::clone(clock);
            let space = *space;
            std::thread::spawn(move || {
                let mut rng = SimRng::new(41 + r as u64);
                let mut staleness = Vec::new();
                let mut queries = 0u64;
                let mut hits = 0usize;
                let mut iter = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    hits +=
                        reader_pass(&mut reader, &clock, &space, &mut rng, iter, &mut staleness);
                    iter += 1;
                    queries += 1;
                }
                black_box(hits);
                (queries, staleness)
            })
        })
        .collect();

    let started = Instant::now();
    std::thread::sleep(phase);
    stop.store(true, Ordering::Relaxed);
    let elapsed = started.elapsed().as_secs_f64();
    let (dir, publisher, announced) = writer.join().expect("writer thread");
    let mut queries = 0u64;
    let mut staleness = Vec::new();
    for t in reader_threads {
        let (q, mut s) = t.join().expect("reader thread");
        queries += q;
        staleness.append(&mut s);
    }
    let (p50, p99) = percentiles(&mut staleness);
    let row = PhaseRow {
        readers,
        reader_qps: queries as f64 / elapsed,
        writer_announce_per_sec: announced as f64 / elapsed,
        snapshots_published: publisher.stats().published - published_before,
        staleness_p50_ms: p50 as f64 / 1e6,
        staleness_p99_ms: p99 as f64 / 1e6,
    };
    (dir, publisher, row)
}

/// Allocation events across a burst of reader passes on a published
/// snapshot.  Run with no other threads live, so every counted event
/// is the reader's.  Returns (passes, events).
fn reader_alloc_audit(handle: &SnapshotHandle, clock: &WallClock, space: &AddrSpace) -> (u64, u64) {
    let mut reader = handle.reader();
    let mut rng = SimRng::new(47);
    let mut staleness = Vec::with_capacity(1 << 12);
    let mut hits = 0usize;
    // Warm-up: fault in the reader slot and the staleness buffer.
    hits += reader_pass(&mut reader, clock, space, &mut rng, 1, &mut staleness);
    let passes = 2048u64;
    let before = alloc_events();
    for iter in 0..passes {
        hits += reader_pass(
            &mut reader,
            clock,
            space,
            &mut rng,
            iter as usize,
            &mut staleness,
        );
    }
    let events = alloc_events() - before;
    black_box(hits);
    black_box(staleness.len());
    (passes, events)
}

/// Smoke floors/ceilings, generous enough that only a structural
/// regression trips them on a single-core debug-profile CI box: a
/// reader falling back to locking, a writer stalled behind readers, or
/// the query path starting to allocate.
const SMOKE_READER_QPS_FLOOR: f64 = 5_000.0;
const SMOKE_WRITER_APS_FLOOR: f64 = 1_000.0;
const SMOKE_STALENESS_P99_CEILING_MS: f64 = 1_000.0;

#[allow(clippy::too_many_arguments)]
fn render_json(
    knobs: &Knobs,
    cores: usize,
    cold_aps: f64,
    steady_aps: f64,
    rows: &[PhaseRow],
    scaling_4v1: Option<f64>,
    gate_applied: bool,
    alloc_events: u64,
) -> String {
    let mut out = String::from("{\n  \"bench\": \"runtime_throughput\",\n");
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"cached_sessions\": {},\n", knobs.sessions));
    out.push_str(&format!("  \"cold_ingest_per_sec\": {cold_aps:.0},\n"));
    out.push_str(&format!("  \"steady_ingest_per_sec\": {steady_aps:.0},\n"));
    out.push_str("  \"combined\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"readers\": {}, \"reader_qps\": {:.0}, \"writer_announce_per_sec\": {:.0}, \"snapshots_published\": {}, \"staleness_p50_ms\": {:.3}, \"staleness_p99_ms\": {:.3}}}{}\n",
            r.readers,
            r.reader_qps,
            r.writer_announce_per_sec,
            r.snapshots_published,
            r.staleness_p50_ms,
            r.staleness_p99_ms,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let ratio = scaling_4v1.map_or("null".to_string(), |s| format!("{s:.2}"));
    out.push_str(&format!("  \"scaling_4v1\": {ratio},\n"));
    out.push_str(&format!("  \"scaling_gate_applied\": {gate_applied},\n"));
    out.push_str(&format!("  \"reader_alloc_events\": {alloc_events},\n"));
    let rss = peak_rss_kb().map_or("null".to_string(), |kb| kb.to_string());
    out.push_str(&format!("  \"peak_rss_kb\": {rss}\n}}\n"));
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let knobs = if smoke {
        Knobs {
            sessions: 10_000,
            solo_refreshes: 20_000,
            phase: Duration::from_millis(400),
            reader_counts: vec![1, 4],
            cadence: SnapshotCadence {
                min_interval: SimDuration::from_millis(50),
                max_pending: 50_000,
            },
        }
    } else {
        Knobs {
            sessions: 100_000,
            solo_refreshes: 200_000,
            phase: Duration::from_secs(2),
            reader_counts: vec![1, 2, 4],
            cadence: SnapshotCadence {
                min_interval: SimDuration::from_millis(250),
                max_pending: 500_000,
            },
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let space = AddrSpace::new(Ipv4Addr::new(224, 2, 0, 0), knobs.sessions as u32);
    let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 9, 9, 9));
    cfg.space = space;
    let mut dir = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
    dir.set_telemetry_identity(0, 17);
    let mut publisher = SnapshotPublisher::new(knobs.cadence);
    let handle = publisher.handle();
    let clock = Arc::new(WallClock::new());
    let pkts = Arc::new(packets(knobs.sessions, &space));
    let mut rng = SimRng::new(31);

    // Cold ingest: first pass over the working set through `on_packet`.
    let start = Instant::now();
    for pkt in pkts.iter() {
        let (out, _) = dir.on_packet(clock.now(), pkt, &mut rng);
        black_box(out.len());
    }
    let cold_aps = knobs.sessions as f64 / start.elapsed().as_secs_f64();
    assert_eq!(
        dir.cached_sessions(),
        knobs.sessions,
        "every fixture must be cached"
    );
    publisher.publish(clock.now(), &dir);

    // Steady-state ingest: refreshes of the resident working set, solo.
    let start = Instant::now();
    for i in 0..knobs.solo_refreshes {
        let pkt = &pkts[i % pkts.len()];
        let (out, _) = dir.on_packet(clock.now(), pkt, &mut rng);
        black_box(out.len());
    }
    let steady_aps = knobs.solo_refreshes as f64 / start.elapsed().as_secs_f64();

    // Combined phases: writer + 1..N readers.
    let mut rows: Vec<PhaseRow> = Vec::new();
    for &readers in &knobs.reader_counts {
        let (d, p, row) = combined_phase(
            dir,
            publisher,
            &handle,
            &clock,
            &pkts,
            &space,
            readers,
            knobs.phase,
        );
        dir = d;
        publisher = p;
        rows.push(row);
    }

    // Reader allocation audit, with every worker thread joined.
    let (audit_passes, audit_events) = reader_alloc_audit(&handle, &clock, &space);

    println!(
        "cores {cores}, cached_sessions {}, ingest cold {:.0}/s steady {:.0}/s",
        knobs.sessions, cold_aps, steady_aps
    );
    println!(
        "{:>7}  {:>12}  {:>12}  {:>9}  {:>10}  {:>10}",
        "readers", "reader_qps", "writer_aps", "snapshots", "stale_p50", "stale_p99"
    );
    for r in &rows {
        println!(
            "{:>7}  {:>12.0}  {:>12.0}  {:>9}  {:>8.2}ms  {:>8.2}ms",
            r.readers,
            r.reader_qps,
            r.writer_announce_per_sec,
            r.snapshots_published,
            r.staleness_p50_ms,
            r.staleness_p99_ms,
        );
    }
    println!("reader allocation events: {audit_events} across {audit_passes} query passes");

    let single = rows.iter().find(|r| r.readers == 1);
    let quad = rows.iter().find(|r| r.readers == 4);
    let scaling_4v1 = match (single, quad) {
        (Some(s), Some(q)) if s.reader_qps > 0.0 => Some(q.reader_qps / s.reader_qps),
        _ => None,
    };
    // The parallel-scaling claim needs cores to stand on: 4 readers +
    // writer + watchdog.  Measured and recorded regardless; gated only
    // where it can physically hold.
    let gate_applied = cores >= 6;
    if let Some(ratio) = scaling_4v1 {
        println!(
            "4-reader / 1-reader aggregate: {ratio:.2}x ({})",
            if gate_applied {
                "gated: must be >= 3.0"
            } else {
                "not gated: too few cores"
            }
        );
    }

    if !smoke {
        let json = render_json(
            &knobs,
            cores,
            cold_aps,
            steady_aps,
            &rows,
            scaling_4v1,
            gate_applied,
            audit_events,
        );
        fs::create_dir_all("results_full").expect("create results_full/");
        fs::write("results_full/BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
        println!("wrote results_full/BENCH_runtime.json");
    }

    let mut failed = false;
    if audit_events > 0 {
        eprintln!(
            "REGRESSION: {audit_events} allocation events on the reader query path — \
             snapshot queries must be allocation-free"
        );
        failed = true;
    }
    if gate_applied {
        if let Some(ratio) = scaling_4v1 {
            if ratio < 3.0 {
                eprintln!(
                    "REGRESSION: 4-reader aggregate only {ratio:.2}x the single-reader rate \
                     (floor 3.0x) — readers are serialising"
                );
                failed = true;
            }
        }
    }
    if smoke {
        if let Some(s) = single {
            if s.reader_qps < SMOKE_READER_QPS_FLOOR {
                eprintln!(
                    "REGRESSION: single-reader rate {:.0} qps below the {SMOKE_READER_QPS_FLOOR} floor",
                    s.reader_qps
                );
                failed = true;
            }
        }
        for r in &rows {
            if r.writer_announce_per_sec < SMOKE_WRITER_APS_FLOOR {
                eprintln!(
                    "REGRESSION: writer sustained only {:.0} announcements/s under {} readers \
                     (floor {SMOKE_WRITER_APS_FLOOR})",
                    r.writer_announce_per_sec, r.readers
                );
                failed = true;
            }
            if r.staleness_p99_ms > SMOKE_STALENESS_P99_CEILING_MS {
                eprintln!(
                    "REGRESSION: p99 snapshot staleness {:.1}ms under {} readers exceeds the \
                     {SMOKE_STALENESS_P99_CEILING_MS}ms ceiling",
                    r.staleness_p99_ms, r.readers
                );
                failed = true;
            }
            if r.snapshots_published == 0 {
                eprintln!(
                    "REGRESSION: writer published no snapshots under {} readers",
                    r.readers
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
