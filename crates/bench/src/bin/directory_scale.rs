//! `directory_scale` — cache scaling benchmark for the slab storage
//! core.
//!
//! Measures the three hot cache operations at directory scale — 10k,
//! 100k and one **million** cached sessions — against the generational
//! slab [`AnnouncementCache`] (contiguous arena, TTL-band sharded
//! expiry heaps, interned strings).  At 10k/100k every workload also
//! runs against `LegacyCache`, an in-bin replica of the pre-refactor
//! full-scan implementation; the legacy comparison is *not* run at 1M,
//! where the full-scan side would dominate wall time without saying
//! anything new.  Workloads:
//!
//! * **announce_churn** — steady-state refresh traffic with a purge
//!   check per round (the directory's cache-expiry timer path).  The
//!   legacy purge is a full `retain` scan even when nothing expires.
//! * **allocation_probe** — `users_of` on random groups (the clash
//!   probe run on every received announcement) plus a periodic
//!   `visible_sessions` projection (the allocator view).
//! * **expiry** — age a fully-populated cache out in steps; legacy
//!   rescans every surviving entry per step.
//! * **refresh_op / probe_op** — individually-timed operations on the
//!   populated cache, reported as p50/p99 per-op latency.
//!
//! After each size the process peak RSS (`VmHWM` from
//! `/proc/self/status`, Linux only) is sampled; `VmHWM` is a monotonic
//! high-water mark, so with ascending sizes the last reading is the 1M
//! peak.
//!
//! Run modes:
//! * `--smoke` — 10k sessions, reduced iterations; prints the table and
//!   exits non-zero if any workload regresses below 1×, if the per-op
//!   refresh latency exceeds its ceiling, or if the steady-state
//!   refresh path allocates (used by `scripts/check.sh`).
//! * full (no flag) — 10k, 100k and 1M sessions; also writes
//!   `results_full/BENCH_scale.json`.  The scan workloads' speedups
//!   grow with size (roughly 10x churn / 30x probe at 100k); the
//!   sampled per-op rows sit near parity at 10k and pull ahead as the
//!   legacy scans leave cache.
//!
//! Both modes finish with the **telemetry overhead gate**: the full
//! directory receive path (`on_packet` announcement traffic + announce
//! and cache-expiry timers) is driven with telemetry enabled and
//! disabled, interleaved best-of-N, and the enabled run must stay
//! within 5% of the disabled one (`--smoke` exits non-zero past the
//! bar; the full run reports without gating, since it follows the long
//! cache benchmark and inherits its thermal noise).
//!
//! Everything is driven from a fixed-seed [`SimRng`], so the work done
//! (not the wall time) is identical across runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::{BTreeSet, HashMap};
use std::fs;
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use sdalloc_core::{AddrSpace, InformedRandomAllocator, VisibleSession};
use sdalloc_sap::cache::{AnnouncementCache, CacheEntry, CacheKey};
use sdalloc_sap::directory::{DirectoryConfig, SessionDirectory, TimerKind};
use sdalloc_sap::sdp::{DescRef, Media, Origin, SessionDescription};
use sdalloc_sap::wire::SapPacket;
use sdalloc_sim::{SimDuration, SimRng, SimTime};

/// Counting allocator shim: forwards to the system allocator and
/// tallies allocation events, so the smoke gate can assert the
/// steady-state refresh path performs no heap allocation.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter is a relaxed
// atomic with no effect on allocation behaviour.  The workspace denies
// `unsafe_code`, but a counting allocator cannot be written without
// implementing the unsafe `GlobalAlloc` trait — the exemption is
// scoped to this bench-only shim and adds no unsafe of its own.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Process peak RSS in kilobytes (`VmHWM` from `/proc/self/status`).
/// `None` off Linux or if the field is missing.
fn peak_rss_kb() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Hard cache timeout used by every scenario.
const TIMEOUT: SimDuration = SimDuration::from_secs(3600);

/// The pre-refactor cache: a bare `HashMap` where every hot operation
/// is a full scan.  Kept verbatim-in-spirit so the benchmark compares
/// algorithms, not incidental code differences — observation and
/// removal bookkeeping match the indexed cache (including the
/// reconciliation digests and governor indices both sides now
/// maintain); only the lookups scan.
struct LegacyCache {
    entries: HashMap<CacheKey, CacheEntry>,
    timeout: SimDuration,
    /// Matched-bookkeeping mirror of the indexed cache's per-bucket
    /// digest accumulators.
    digests: [u64; 16],
    /// Matched-bookkeeping mirror of the governor's origin index.
    origin_keys: HashMap<Ipv4Addr, BTreeSet<u64>>,
    /// Matched-bookkeeping mirror of the governor's unverified tier.
    unverified: BTreeSet<(SimTime, CacheKey)>,
}

impl LegacyCache {
    fn new(timeout: SimDuration) -> Self {
        LegacyCache {
            entries: HashMap::new(),
            timeout,
            digests: [0; 16],
            origin_keys: HashMap::new(),
            unverified: BTreeSet::new(),
        }
    }

    fn observe_announce(&mut self, now: SimTime, desc: SessionDescription) {
        let key = CacheKey {
            origin: desc.origin.address,
            session_id: desc.origin.session_id,
        };
        match self.entries.get_mut(&key) {
            None => {
                let (bucket, hash) = AnnouncementCache::desc_digest(&desc);
                self.digests[bucket] ^= hash;
                self.origin_keys
                    .entry(key.origin)
                    .or_default()
                    .insert(key.session_id);
                self.unverified.insert((now, key));
                self.entries.insert(
                    key,
                    CacheEntry {
                        desc,
                        first_heard: now,
                        last_heard: now,
                        announcements: 1,
                    },
                );
            }
            Some(entry) => {
                let (bucket, old_hash) = AnnouncementCache::desc_digest(&entry.desc);
                let (_, new_hash) = AnnouncementCache::desc_digest(&desc);
                if old_hash != new_hash {
                    self.digests[bucket] ^= old_hash ^ new_hash;
                }
                entry.desc = desc;
                entry.last_heard = now;
                entry.announcements += 1;
                if entry.announcements == 2 {
                    self.unverified.remove(&(entry.first_heard, key));
                }
            }
        }
    }

    fn purge_expired(&mut self, now: SimTime) -> usize {
        let timeout = self.timeout;
        let mut purged = Vec::new();
        let digests = &mut self.digests;
        let origin_keys = &mut self.origin_keys;
        let unverified = &mut self.unverified;
        self.entries.retain(|key, entry| {
            if now.saturating_since(entry.last_heard) > timeout {
                let (bucket, hash) = AnnouncementCache::desc_digest(&entry.desc);
                digests[bucket] ^= hash;
                if let Some(ids) = origin_keys.get_mut(&key.origin) {
                    ids.remove(&key.session_id);
                    if ids.is_empty() {
                        origin_keys.remove(&key.origin);
                    }
                }
                if entry.announcements < 2 {
                    unverified.remove(&(entry.first_heard, *key));
                }
                purged.push(*key);
                false
            } else {
                true
            }
        });
        purged.sort_unstable();
        purged.len()
    }

    fn users_of(&self, group: Ipv4Addr) -> usize {
        let mut users: Vec<&CacheKey> = self
            .entries
            .iter()
            .filter(|(_, entry)| entry.desc.group == group)
            .map(|(key, _)| key)
            .collect();
        users.sort_unstable();
        users.len()
    }

    fn visible_sessions(&self, space: &AddrSpace) -> Vec<VisibleSession> {
        let mut view: Vec<VisibleSession> = self
            .entries
            .values()
            .filter_map(|entry| {
                space
                    .index_of(entry.desc.group)
                    .map(|addr| VisibleSession::new(addr, entry.desc.ttl))
            })
            .collect();
        view.sort_unstable_by_key(|s| (s.addr.0, s.ttl));
        view
    }
}

/// The operations both implementations expose, so each workload is
/// written once and timed against either side.
trait CacheOps {
    fn observe(&mut self, now: SimTime, desc: SessionDescription);
    fn purge(&mut self, now: SimTime) -> usize;
    fn probe(&self, group: Ipv4Addr) -> usize;
    fn view_len(&self, space: &AddrSpace) -> usize;
}

impl CacheOps for LegacyCache {
    fn observe(&mut self, now: SimTime, desc: SessionDescription) {
        self.observe_announce(now, desc);
    }
    fn purge(&mut self, now: SimTime) -> usize {
        self.purge_expired(now)
    }
    fn probe(&self, group: Ipv4Addr) -> usize {
        self.users_of(group)
    }
    fn view_len(&self, space: &AddrSpace) -> usize {
        self.visible_sessions(space).len()
    }
}

impl CacheOps for AnnouncementCache {
    fn observe(&mut self, now: SimTime, desc: SessionDescription) {
        self.observe_announce(now, desc);
    }
    fn purge(&mut self, now: SimTime) -> usize {
        self.purge_expired(now).len()
    }
    fn probe(&self, group: Ipv4Addr) -> usize {
        self.users_of(group).count()
    }
    fn view_len(&self, space: &AddrSpace) -> usize {
        self.visible_sessions(space).len()
    }
}

/// Benchmark knobs for one run mode.
struct Knobs {
    sizes: Vec<usize>,
    churn_rounds: u64,
    churn_per_round: usize,
    probes: usize,
    expiry_steps: u64,
    /// Individually-timed ops for the p50/p99 rows and the smoke
    /// allocation gate.
    sampled_ops: usize,
}

fn media() -> Vec<Media> {
    vec![Media {
        kind: "audio".into(),
        port: 5004,
        proto: "RTP/AVP".into(),
        format: 0,
    }]
}

/// Session `i`'s description: distinct origin per session, group drawn
/// from the space round-robin.  Generated on demand so the 1M tier
/// does not hold a million fixture descriptions alive — the measured
/// peak RSS is the cache's, not the harness's.
fn session(i: usize, space: &AddrSpace) -> SessionDescription {
    let group = u32::from(space.base()) + (i as u32 % space.size());
    SessionDescription {
        origin: Origin {
            username: "-".into(),
            session_id: i as u64,
            version: 1,
            address: Ipv4Addr::from(0x0a00_0000 + i as u32),
        },
        name: format!("s{i}"),
        info: None,
        group: Ipv4Addr::from(group),
        ttl: 63,
        start: 0,
        stop: 0,
        media: media(),
    }
}

/// Populate with `last_heard` staggered 10 ms apart, so expiry is
/// spread rather than simultaneous.
fn populate<C: CacheOps>(cache: &mut C, n: usize, space: &AddrSpace) {
    for i in 0..n {
        cache.observe(
            SimTime::from_nanos(i as u64 * 10_000_000),
            session(i, space),
        );
    }
}

/// Steady-state churn: refresh a random subset each round, then run the
/// purge check the cache-expiry timer performs.  Nothing expires — the
/// cost under test is the no-op purge plus refresh bookkeeping.
fn announce_churn<C: CacheOps>(cache: &mut C, n: usize, space: &AddrSpace, knobs: &Knobs) -> usize {
    let mut rng = SimRng::new(11);
    let mut purged = 0;
    for round in 0..knobs.churn_rounds {
        let now = SimTime::from_secs(100 + round);
        for _ in 0..knobs.churn_per_round {
            let d = session(rng.index(n), space);
            cache.observe(now, d);
        }
        purged += cache.purge(now);
    }
    purged
}

/// The clash probe: `users_of` on random groups, with the allocator
/// view rebuilt every 64 probes.
fn allocation_probe<C: CacheOps>(cache: &C, space: &AddrSpace, knobs: &Knobs) -> usize {
    let mut rng = SimRng::new(13);
    let mut hits = 0;
    for i in 0..knobs.probes {
        let group =
            Ipv4Addr::from(u32::from(space.base()) + rng.below(u64::from(space.size())) as u32);
        hits += cache.probe(group);
        if i % 64 == 0 {
            hits += cache.view_len(space);
        }
    }
    hits
}

/// Age the whole cache out in steps; each step expires roughly
/// `n / expiry_steps` entries.  A step models one poll tick during the
/// drain window — the pre-refactor directory ran the purge scan on
/// every poll, so the tick count is deliberately high.
fn expiry<C: CacheOps>(cache: &mut C, n: usize, knobs: &Knobs) -> usize {
    // Population spans [0, n * 10ms); step the clock so the horizon
    // sweeps that span in `expiry_steps` slices.
    let span_ns = n as u64 * 10_000_000;
    let mut purged = 0;
    for step in 1..=knobs.expiry_steps {
        let now = SimTime::from_nanos(TIMEOUT.as_nanos() + span_ns * step / knobs.expiry_steps + 1);
        purged += cache.purge(now);
    }
    purged
}

/// p50/p99 of a sample set (nanoseconds).  Sorts in place.
fn percentiles(samples: &mut [u64]) -> (u64, u64) {
    samples.sort_unstable();
    let pick = |p: usize| samples[(samples.len() - 1) * p / 100];
    (pick(50), pick(99))
}

/// Individually-timed refresh operations, each side driven through its
/// natural receive path with fixtures built before the clock starts:
/// the legacy cache consumes an owned description (its entries own
/// their strings, so a refresh must hand one over), the indexed cache
/// consumes a borrowed view (`on_packet` parses once and refreshes
/// zero-copy).  Returns (total_ns, p50_ns, p99_ns).
fn refresh_op_latency_legacy(
    cache: &mut LegacyCache,
    n: usize,
    space: &AddrSpace,
    ops: usize,
) -> (u128, u64, u64) {
    let mut rng = SimRng::new(19);
    let mut samples = Vec::with_capacity(ops);
    let now = SimTime::from_secs(500);
    for _ in 0..ops {
        let d = session(rng.index(n), space);
        let start = Instant::now();
        cache.observe_announce(now, d);
        samples.push(start.elapsed().as_nanos() as u64);
    }
    let total: u128 = samples.iter().map(|&s| u128::from(s)).sum();
    let (p50, p99) = percentiles(&mut samples);
    (total, p50, p99)
}

/// Indexed-side counterpart of [`refresh_op_latency_legacy`]: the
/// owned fixture and its borrowed view are built outside the timed
/// window, so the sample is `observe_announce_ref` alone — the
/// operation the directory performs per received announcement after
/// the one-time parse.
fn refresh_op_latency_indexed(
    cache: &mut AnnouncementCache,
    n: usize,
    space: &AddrSpace,
    ops: usize,
) -> (u128, u64, u64) {
    let mut rng = SimRng::new(19);
    let mut samples = Vec::with_capacity(ops);
    let now = SimTime::from_secs(500);
    for _ in 0..ops {
        let d = session(rng.index(n), space);
        let view = d.as_ref();
        let start = Instant::now();
        black_box(cache.observe_announce_ref(now, &view));
        samples.push(start.elapsed().as_nanos() as u64);
    }
    let total: u128 = samples.iter().map(|&s| u128::from(s)).sum();
    let (p50, p99) = percentiles(&mut samples);
    (total, p50, p99)
}

/// Individually-timed `users_of` probes.  Returns (total_ns, p50_ns,
/// p99_ns).
fn probe_op_latency<C: CacheOps>(cache: &C, space: &AddrSpace, ops: usize) -> (u128, u64, u64) {
    let mut rng = SimRng::new(23);
    let mut samples = Vec::with_capacity(ops);
    let mut hits = 0usize;
    for _ in 0..ops {
        let group =
            Ipv4Addr::from(u32::from(space.base()) + rng.below(u64::from(space.size())) as u32);
        let start = Instant::now();
        hits += cache.probe(group);
        samples.push(start.elapsed().as_nanos() as u64);
    }
    black_box(hits);
    let total: u128 = samples.iter().map(|&s| u128::from(s)).sum();
    let (p50, p99) = percentiles(&mut samples);
    (total, p50, p99)
}

/// Allocation events per steady-state refresh through the zero-copy
/// admit path (`observe_announce_ref` with pre-parsed borrowed
/// descriptions).  A refresh of an unchanged session must not allocate:
/// the record already owns its interned strings and the heap slot is
/// re-filed lazily.  Returns (ops, allocation events).
fn refresh_alloc_count(indexed: &mut AnnouncementCache, n: usize, space: &AddrSpace) -> (u64, u64) {
    let ops = 4096.min(n);
    let mut rng = SimRng::new(29);
    // Build the owned fixtures and their borrowed views up front; the
    // counted window then sees only the cache refresh itself.
    let descs: Vec<SessionDescription> = (0..ops).map(|_| session(rng.index(n), space)).collect();
    let views: Vec<DescRef<'_>> = descs.iter().map(|d| d.as_ref()).collect();
    let now = SimTime::from_secs(900);
    let before = alloc_events();
    for v in &views {
        black_box(indexed.observe_announce_ref(now, v));
    }
    (ops as u64, alloc_events() - before)
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos())
}

struct Row {
    size: usize,
    workload: &'static str,
    /// `None` at sizes where the full-scan comparator is not run (1M).
    legacy_ns: Option<u128>,
    indexed_ns: u128,
    /// Per-op latency percentiles, for the individually-sampled rows.
    p50_ns: Option<u64>,
    p99_ns: Option<u64>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        self.legacy_ns
            .map(|l| l as f64 / self.indexed_ns.max(1) as f64)
    }
}

/// Largest size at which the legacy full-scan comparator still runs;
/// beyond this the quadratic scan side would dominate wall time.
const LEGACY_CEILING: usize = 100_000;

fn run_size(n: usize, knobs: &Knobs, rows: &mut Vec<Row>, rss: &mut Vec<(usize, u64)>) {
    let with_legacy = n <= LEGACY_CEILING;
    let space = AddrSpace::new(Ipv4Addr::new(224, 2, 0, 0), n as u32);

    // announce_churn
    let mut legacy = with_legacy.then(|| {
        let mut c = LegacyCache::new(TIMEOUT);
        populate(&mut c, n, &space);
        c
    });
    let legacy_churn = legacy.as_mut().map(|c| {
        let (out, ns) = timed(|| announce_churn(c, n, &space, knobs));
        (out, ns)
    });
    let mut indexed = AnnouncementCache::new(TIMEOUT);
    populate(&mut indexed, n, &space);
    let (i_out, indexed_ns) = timed(|| announce_churn(&mut indexed, n, &space, knobs));
    if let Some((l_out, _)) = legacy_churn {
        assert_eq!(l_out, i_out, "churn purge counts diverge");
    }
    black_box(i_out);
    rows.push(Row {
        size: n,
        workload: "announce_churn",
        legacy_ns: legacy_churn.map(|(_, ns)| ns),
        indexed_ns,
        p50_ns: None,
        p99_ns: None,
    });

    // allocation_probe (on the churned caches — both hold all n entries)
    let legacy_probe = legacy
        .as_ref()
        .map(|c| timed(|| allocation_probe(c, &space, knobs)));
    let (i_out, indexed_ns) = timed(|| allocation_probe(&indexed, &space, knobs));
    if let Some((l_out, _)) = legacy_probe {
        assert_eq!(l_out, i_out, "probe hit counts diverge");
    }
    black_box(i_out);
    rows.push(Row {
        size: n,
        workload: "allocation_probe",
        legacy_ns: legacy_probe.map(|(_, ns)| ns),
        indexed_ns,
        p50_ns: None,
        p99_ns: None,
    });

    // refresh_op / probe_op: per-op latency percentiles on the
    // populated caches.
    let legacy_refresh = legacy
        .as_mut()
        .map(|c| refresh_op_latency_legacy(c, n, &space, knobs.sampled_ops));
    let (total, p50, p99) = refresh_op_latency_indexed(&mut indexed, n, &space, knobs.sampled_ops);
    rows.push(Row {
        size: n,
        workload: "refresh_op",
        legacy_ns: legacy_refresh.map(|(t, _, _)| t),
        indexed_ns: total,
        p50_ns: Some(p50),
        p99_ns: Some(p99),
    });
    let legacy_probe_op = legacy
        .as_ref()
        .map(|c| probe_op_latency(c, &space, knobs.sampled_ops));
    let (total, p50, p99) = probe_op_latency(&indexed, &space, knobs.sampled_ops);
    rows.push(Row {
        size: n,
        workload: "probe_op",
        legacy_ns: legacy_probe_op.map(|(t, _, _)| t),
        indexed_ns: total,
        p50_ns: Some(p50),
        p99_ns: Some(p99),
    });

    // expiry (fresh caches: the churned ones have bunched last_heard)
    let mut legacy = with_legacy.then(|| {
        let mut c = LegacyCache::new(TIMEOUT);
        populate(&mut c, n, &space);
        c
    });
    let mut indexed = AnnouncementCache::new(TIMEOUT);
    populate(&mut indexed, n, &space);
    if let Some(c) = &legacy {
        assert_eq!(
            c.digests,
            indexed.digest(),
            "matched digest bookkeeping diverges after populate"
        );
        assert_ne!(c.digests, [0; 16], "populated digests must be non-zero");
    }
    let legacy_expiry = legacy.as_mut().map(|c| timed(|| expiry(c, n, knobs)));
    let (i_out, indexed_ns) = timed(|| expiry(&mut indexed, n, knobs));
    if let Some((l_out, _)) = legacy_expiry {
        assert_eq!(l_out, i_out, "expiry purge counts diverge");
    }
    assert_eq!(i_out, n, "expiry must drain the whole cache");
    if let Some(c) = &legacy {
        assert_eq!(
            c.digests,
            indexed.digest(),
            "matched digest bookkeeping returns to empty after full drain"
        );
    }
    black_box(i_out);
    rows.push(Row {
        size: n,
        workload: "expiry",
        legacy_ns: legacy_expiry.map(|(_, ns)| ns),
        indexed_ns,
        p50_ns: None,
        p99_ns: None,
    });

    if let Some(kb) = peak_rss_kb() {
        rss.push((n, kb));
    }
}

/// One pass over the directory's hot receive path: a round of remote
/// announcement traffic through `on_packet`, the node's own announce
/// timers, and the cache-expiry timer — i.e. every code path the
/// telemetry instrumentation touches.  Returns total packets emitted,
/// as a black-box anchor.
fn drive_directory(telemetry_on: bool, packets: &[SapPacket], rounds: u64) -> usize {
    let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 9, 9, 9));
    cfg.space = AddrSpace::new(Ipv4Addr::new(224, 9, 0, 0), 4096);
    let mut dir = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
    dir.set_telemetry_enabled(telemetry_on);
    let mut rng = SimRng::new(17);
    let mut own = Vec::new();
    for i in 0..8 {
        let id = dir
            .create_session(SimTime::ZERO, &format!("own{i}"), 63, media(), &mut rng)
            .expect("allocate own session");
        own.push(id);
    }
    let mut emitted = 0;
    for round in 0..rounds {
        let now = SimTime::from_secs(1 + round);
        for pkt in packets {
            let (out, _) = dir.on_packet(now, pkt, &mut rng);
            emitted += out.len();
        }
        for &id in &own {
            emitted += dir.on_timer(now, TimerKind::Announce(id)).len();
        }
        emitted += dir.on_timer(now, TimerKind::CacheExpiry).len();
    }
    emitted
}

/// Best-of-N interleaved comparison of the directory hot path with
/// telemetry enabled vs disabled.  Interleaving (off, on, off, on, ...)
/// cancels frequency-scaling drift; best-of-N discards scheduler noise.
fn telemetry_overhead(smoke: bool) -> (u128, u128) {
    let (n_remote, rounds, trials) = if smoke { (512, 24, 5) } else { (1024, 48, 7) };
    let space = AddrSpace::new(Ipv4Addr::new(224, 9, 0, 0), 4096);
    let packets: Vec<SapPacket> = (0..n_remote)
        .map(|i| {
            let d = session(i, &space);
            SapPacket::announce(d.origin.address, d.origin.session_id as u16, d.format())
        })
        .collect();

    // Warm-up pass (page in code and allocator state on both sides).
    let expect = drive_directory(false, &packets, rounds);
    assert_eq!(
        drive_directory(true, &packets, rounds),
        expect,
        "telemetry must not change directory behaviour"
    );

    let (mut best_off, mut best_on) = (u128::MAX, u128::MAX);
    for _ in 0..trials {
        let (out, off_ns) = timed(|| drive_directory(false, &packets, rounds));
        black_box(out);
        best_off = best_off.min(off_ns);
        let (out, on_ns) = timed(|| drive_directory(true, &packets, rounds));
        black_box(out);
        best_on = best_on.min(on_ns);
    }
    (best_off, best_on)
}

fn render_json(rows: &[Row], rss: &[(usize, u64)]) -> String {
    let mut out = String::from("{\n  \"bench\": \"directory_scale\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let legacy = r.legacy_ns.map_or("null".to_string(), |ns| ns.to_string());
        let speedup = r
            .speedup()
            .map_or("null".to_string(), |s| format!("{s:.2}"));
        let p50 = r.p50_ns.map_or("null".to_string(), |ns| ns.to_string());
        let p99 = r.p99_ns.map_or("null".to_string(), |ns| ns.to_string());
        out.push_str(&format!(
            "    {{\"size\": {}, \"workload\": \"{}\", \"legacy_ns\": {legacy}, \"indexed_ns\": {}, \"speedup\": {speedup}, \"p50_ns\": {p50}, \"p99_ns\": {p99}}}{}\n",
            r.size,
            r.workload,
            r.indexed_ns,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"peak_rss\": [\n");
    for (i, (size, kb)) in rss.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"after_size\": {size}, \"vm_hwm_kb\": {kb}}}{}\n",
            if i + 1 < rss.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Smoke ceilings for the per-op gates, deliberately generous so only
/// an algorithmic regression (a scan creeping back into the refresh or
/// probe path) trips them on shared CI hardware.
const SMOKE_REFRESH_P99_NS: u64 = 100_000;
const SMOKE_PROBE_P99_NS: u64 = 200_000;
/// Allocation slack for the refresh-path gate: a handful of events
/// tolerated (allocator-internal bookkeeping), far below the
/// one-per-op a cloning path would cost.
const SMOKE_ALLOC_SLACK: u64 = 64;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let knobs = if smoke {
        Knobs {
            sizes: vec![10_000],
            churn_rounds: 32,
            churn_per_round: 64,
            probes: 512,
            expiry_steps: 512,
            sampled_ops: 4096,
        }
    } else {
        Knobs {
            sizes: vec![10_000, 100_000, 1_000_000],
            churn_rounds: 256,
            churn_per_round: 64,
            probes: 2048,
            expiry_steps: 2048,
            sampled_ops: 8192,
        }
    };

    let mut rows = Vec::new();
    let mut rss = Vec::new();
    for &n in &knobs.sizes {
        run_size(n, &knobs, &mut rows, &mut rss);
    }

    println!(
        "{:>8}  {:>17}  {:>12}  {:>12}  {:>8}  {:>9}  {:>9}",
        "size", "workload", "legacy_ms", "indexed_ms", "speedup", "p50_ns", "p99_ns"
    );
    for r in &rows {
        let legacy_ms = r
            .legacy_ns
            .map_or("-".to_string(), |ns| format!("{:.3}", ns as f64 / 1e6));
        let speedup = r.speedup().map_or("-".to_string(), |s| format!("{s:.1}x"));
        let p50 = r.p50_ns.map_or("-".to_string(), |v| v.to_string());
        let p99 = r.p99_ns.map_or("-".to_string(), |v| v.to_string());
        println!(
            "{:>8}  {:>17}  {:>12}  {:>12.3}  {:>8}  {:>9}  {:>9}",
            r.size,
            r.workload,
            legacy_ms,
            r.indexed_ns as f64 / 1e6,
            speedup,
            p50,
            p99,
        );
    }
    for (size, kb) in &rss {
        println!("peak RSS after {size}: {kb} kB (VmHWM)");
    }

    // Allocation-count gate material: steady-state refreshes through
    // the zero-copy path must not allocate.
    let gate_n = 10_000;
    let space = AddrSpace::new(Ipv4Addr::new(224, 2, 0, 0), gate_n as u32);
    let mut gate_cache = AnnouncementCache::new(TIMEOUT);
    populate(&mut gate_cache, gate_n, &space);
    let (gate_ops, gate_allocs) = refresh_alloc_count(&mut gate_cache, gate_n, &space);
    println!("refresh allocation events: {gate_allocs} across {gate_ops} zero-copy refreshes");

    if !smoke {
        let json = render_json(&rows, &rss);
        fs::create_dir_all("results_full").expect("create results_full/");
        fs::write("results_full/BENCH_scale.json", &json).expect("write BENCH_scale.json");
        println!("wrote results_full/BENCH_scale.json");
    }

    // Regression gate: the indexed cache must never be slower than the
    // legacy scan on the aggregate workloads (where the comparator
    // runs).  The individually-sampled rows sit near parity by design
    // — a slab refresh does the same O(1) work as a HashMap refresh —
    // so they are gated by the absolute ceilings below instead.
    // Smoke runs the aggregates at 10k where expiry sits near parity
    // and finishes in ~15ms, so a scheduler hiccup can push a row a
    // hair under 1.0x; allow 15% noise there.  Full runs keep the
    // strict bar — at 100k+ the real margins are 4-30x.
    let floor = if smoke { 0.85 } else { 1.0 };
    let regressed: Vec<&Row> = rows
        .iter()
        .filter(|r| r.p50_ns.is_none() && r.speedup().is_some_and(|s| s < floor))
        .collect();
    if !regressed.is_empty() {
        for r in regressed {
            eprintln!(
                "REGRESSION: {} @ {} — indexed {}ns vs legacy {:?}ns",
                r.workload, r.size, r.indexed_ns, r.legacy_ns
            );
        }
        std::process::exit(1);
    }

    // Per-op latency + allocation gates (smoke only: the full run's 1M
    // tier reports the same numbers without gating).
    if smoke {
        for r in rows.iter().filter(|r| r.p99_ns.is_some()) {
            let bar = match r.workload {
                "refresh_op" => SMOKE_REFRESH_P99_NS,
                _ => SMOKE_PROBE_P99_NS,
            };
            let p99 = r.p99_ns.unwrap_or(0);
            if p99 > bar {
                eprintln!(
                    "REGRESSION: {} p99 {}ns exceeds the {}ns ceiling",
                    r.workload, p99, bar
                );
                std::process::exit(1);
            }
        }
        if gate_allocs > SMOKE_ALLOC_SLACK {
            eprintln!(
                "REGRESSION: {gate_allocs} allocation events across {gate_ops} steady-state refreshes (slack {SMOKE_ALLOC_SLACK}) — the zero-copy refresh path is allocating"
            );
            std::process::exit(1);
        }
    }

    // Telemetry overhead gate: the instrumented directory hot path must
    // stay within 5% of the uninstrumented one.
    let (off_ns, on_ns) = telemetry_overhead(smoke);
    let mut ratio = on_ns as f64 / off_ns.max(1) as f64;
    if smoke && ratio > 1.05 {
        // One re-measure before failing: a single smoke trial is short
        // enough that scheduler noise alone can breach the 5% bar.
        let (off2, on2) = telemetry_overhead(smoke);
        ratio = ratio.min(on2 as f64 / off2.max(1) as f64);
    }
    println!(
        "\ntelemetry overhead: off {:.3}ms, on {:.3}ms — ratio {:.3} (bar 1.05)",
        off_ns as f64 / 1e6,
        on_ns as f64 / 1e6,
        ratio,
    );
    if smoke && ratio > 1.05 {
        eprintln!("REGRESSION: telemetry-enabled directory exceeds the 5% overhead bar");
        std::process::exit(1);
    }
}
