//! `directory_scale` — cache scaling benchmark for the event-driven
//! refactor.
//!
//! Measures the three hot cache operations at directory scale (10k and
//! 100k cached sessions) twice: once against `LegacyCache`, an in-bin
//! replica of the pre-refactor full-scan implementation, and once
//! against the indexed [`AnnouncementCache`] (expiry min-heap, group
//! index, visible multiset).  Workloads:
//!
//! * **announce_churn** — steady-state refresh traffic with a purge
//!   check per round (the directory's cache-expiry timer path).  The
//!   legacy purge is a full `retain` scan even when nothing expires.
//! * **allocation_probe** — `users_of` on random groups (the clash
//!   probe run on every received announcement) plus a periodic
//!   `visible_sessions` projection (the allocator view).
//! * **expiry** — age a fully-populated cache out in steps; legacy
//!   rescans every surviving entry per step.
//!
//! Run modes:
//! * `--smoke` — 10k sessions, reduced iterations; prints the table and
//!   exits non-zero if any workload regresses below 1× (used by
//!   `scripts/check.sh`).
//! * full (no flag) — 10k and 100k sessions; also writes
//!   `results_full/BENCH_scale.json`.  The acceptance bar is a >=5x
//!   speedup at 100k for announce_churn and expiry.
//!
//! Both modes finish with the **telemetry overhead gate**: the full
//! directory receive path (`on_packet` announcement traffic + announce
//! and cache-expiry timers) is driven with telemetry enabled and
//! disabled, interleaved best-of-N, and the enabled run must stay
//! within 5% of the disabled one (`--smoke` exits non-zero past the
//! bar; the full run reports without gating, since it follows the long
//! cache benchmark and inherits its thermal noise).
//!
//! Everything is driven from a fixed-seed [`SimRng`], so the work done
//! (not the wall time) is identical across runs.

use std::collections::{BTreeSet, HashMap};
use std::fs;
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::time::Instant;

use sdalloc_core::{AddrSpace, InformedRandomAllocator, VisibleSession};
use sdalloc_sap::cache::{AnnouncementCache, CacheEntry, CacheKey};
use sdalloc_sap::directory::{DirectoryConfig, SessionDirectory, TimerKind};
use sdalloc_sap::sdp::{Media, Origin, SessionDescription};
use sdalloc_sap::wire::SapPacket;
use sdalloc_sim::{SimDuration, SimRng, SimTime};

/// Hard cache timeout used by every scenario.
const TIMEOUT: SimDuration = SimDuration::from_secs(3600);

/// The pre-refactor cache: a bare `HashMap` where every hot operation
/// is a full scan.  Kept verbatim-in-spirit so the benchmark compares
/// algorithms, not incidental code differences — observation and
/// removal bookkeeping match the indexed cache (including the
/// reconciliation digests and governor indices both sides now
/// maintain); only the lookups scan.
struct LegacyCache {
    entries: HashMap<CacheKey, CacheEntry>,
    timeout: SimDuration,
    /// Matched-bookkeeping mirror of the indexed cache's per-bucket
    /// digest accumulators.
    digests: [u64; 16],
    /// Matched-bookkeeping mirror of the governor's origin index.
    origin_keys: HashMap<Ipv4Addr, BTreeSet<u64>>,
    /// Matched-bookkeeping mirror of the governor's unverified tier.
    unverified: BTreeSet<(SimTime, CacheKey)>,
}

impl LegacyCache {
    fn new(timeout: SimDuration) -> Self {
        LegacyCache {
            entries: HashMap::new(),
            timeout,
            digests: [0; 16],
            origin_keys: HashMap::new(),
            unverified: BTreeSet::new(),
        }
    }

    fn observe_announce(&mut self, now: SimTime, desc: SessionDescription) {
        let key = CacheKey {
            origin: desc.origin.address,
            session_id: desc.origin.session_id,
        };
        match self.entries.get_mut(&key) {
            None => {
                let (bucket, hash) = AnnouncementCache::desc_digest(&desc);
                self.digests[bucket] ^= hash;
                self.origin_keys
                    .entry(key.origin)
                    .or_default()
                    .insert(key.session_id);
                self.unverified.insert((now, key));
                self.entries.insert(
                    key,
                    CacheEntry {
                        desc,
                        first_heard: now,
                        last_heard: now,
                        announcements: 1,
                    },
                );
            }
            Some(entry) => {
                let (bucket, old_hash) = AnnouncementCache::desc_digest(&entry.desc);
                let (_, new_hash) = AnnouncementCache::desc_digest(&desc);
                if old_hash != new_hash {
                    self.digests[bucket] ^= old_hash ^ new_hash;
                }
                entry.desc = desc;
                entry.last_heard = now;
                entry.announcements += 1;
                if entry.announcements == 2 {
                    self.unverified.remove(&(entry.first_heard, key));
                }
            }
        }
    }

    fn purge_expired(&mut self, now: SimTime) -> usize {
        let timeout = self.timeout;
        let mut purged = Vec::new();
        let digests = &mut self.digests;
        let origin_keys = &mut self.origin_keys;
        let unverified = &mut self.unverified;
        self.entries.retain(|key, entry| {
            if now.saturating_since(entry.last_heard) > timeout {
                let (bucket, hash) = AnnouncementCache::desc_digest(&entry.desc);
                digests[bucket] ^= hash;
                if let Some(ids) = origin_keys.get_mut(&key.origin) {
                    ids.remove(&key.session_id);
                    if ids.is_empty() {
                        origin_keys.remove(&key.origin);
                    }
                }
                if entry.announcements < 2 {
                    unverified.remove(&(entry.first_heard, *key));
                }
                purged.push(*key);
                false
            } else {
                true
            }
        });
        purged.sort_unstable();
        purged.len()
    }

    fn users_of(&self, group: Ipv4Addr) -> usize {
        let mut users: Vec<&CacheKey> = self
            .entries
            .iter()
            .filter(|(_, entry)| entry.desc.group == group)
            .map(|(key, _)| key)
            .collect();
        users.sort_unstable();
        users.len()
    }

    fn visible_sessions(&self, space: &AddrSpace) -> Vec<VisibleSession> {
        let mut view: Vec<VisibleSession> = self
            .entries
            .values()
            .filter_map(|entry| {
                space
                    .index_of(entry.desc.group)
                    .map(|addr| VisibleSession::new(addr, entry.desc.ttl))
            })
            .collect();
        view.sort_unstable_by_key(|s| (s.addr.0, s.ttl));
        view
    }
}

/// The operations both implementations expose, so each workload is
/// written once and timed against either side.
trait CacheOps {
    fn observe(&mut self, now: SimTime, desc: SessionDescription);
    fn purge(&mut self, now: SimTime) -> usize;
    fn probe(&self, group: Ipv4Addr) -> usize;
    fn view_len(&self, space: &AddrSpace) -> usize;
}

impl CacheOps for LegacyCache {
    fn observe(&mut self, now: SimTime, desc: SessionDescription) {
        self.observe_announce(now, desc);
    }
    fn purge(&mut self, now: SimTime) -> usize {
        self.purge_expired(now)
    }
    fn probe(&self, group: Ipv4Addr) -> usize {
        self.users_of(group)
    }
    fn view_len(&self, space: &AddrSpace) -> usize {
        self.visible_sessions(space).len()
    }
}

impl CacheOps for AnnouncementCache {
    fn observe(&mut self, now: SimTime, desc: SessionDescription) {
        self.observe_announce(now, desc);
    }
    fn purge(&mut self, now: SimTime) -> usize {
        self.purge_expired(now).len()
    }
    fn probe(&self, group: Ipv4Addr) -> usize {
        self.users_of(group).count()
    }
    fn view_len(&self, space: &AddrSpace) -> usize {
        self.visible_sessions(space).len()
    }
}

/// Benchmark knobs for one run mode.
struct Knobs {
    sizes: Vec<usize>,
    churn_rounds: u64,
    churn_per_round: usize,
    probes: usize,
    expiry_steps: u64,
}

fn media() -> Vec<Media> {
    vec![Media {
        kind: "audio".into(),
        port: 5004,
        proto: "RTP/AVP".into(),
        format: 0,
    }]
}

/// Session `i`'s description: distinct origin per session, group drawn
/// from the space round-robin.
fn session(i: usize, space: &AddrSpace) -> SessionDescription {
    let group = u32::from(space.base()) + (i as u32 % space.size());
    SessionDescription {
        origin: Origin {
            username: "-".into(),
            session_id: i as u64,
            version: 1,
            address: Ipv4Addr::from(0x0a00_0000 + i as u32),
        },
        name: format!("s{i}"),
        info: None,
        group: Ipv4Addr::from(group),
        ttl: 63,
        start: 0,
        stop: 0,
        media: media(),
    }
}

/// Populate with `last_heard` staggered 10 ms apart, so expiry is
/// spread rather than simultaneous.
fn populate<C: CacheOps>(cache: &mut C, descs: &[SessionDescription]) {
    for (i, d) in descs.iter().enumerate() {
        cache.observe(SimTime::from_nanos(i as u64 * 10_000_000), d.clone());
    }
}

/// Steady-state churn: refresh a random subset each round, then run the
/// purge check the cache-expiry timer performs.  Nothing expires — the
/// cost under test is the no-op purge plus refresh bookkeeping.
fn announce_churn<C: CacheOps>(
    cache: &mut C,
    descs: &[SessionDescription],
    knobs: &Knobs,
) -> usize {
    let mut rng = SimRng::new(11);
    let mut purged = 0;
    for round in 0..knobs.churn_rounds {
        let now = SimTime::from_secs(100 + round);
        for _ in 0..knobs.churn_per_round {
            let d = &descs[rng.index(descs.len())];
            cache.observe(now, d.clone());
        }
        purged += cache.purge(now);
    }
    purged
}

/// The clash probe: `users_of` on random groups, with the allocator
/// view rebuilt every 64 probes.
fn allocation_probe<C: CacheOps>(cache: &C, space: &AddrSpace, knobs: &Knobs) -> usize {
    let mut rng = SimRng::new(13);
    let mut hits = 0;
    for i in 0..knobs.probes {
        let group =
            Ipv4Addr::from(u32::from(space.base()) + rng.below(u64::from(space.size())) as u32);
        hits += cache.probe(group);
        if i % 64 == 0 {
            hits += cache.view_len(space);
        }
    }
    hits
}

/// Age the whole cache out in steps; each step expires roughly
/// `n / expiry_steps` entries.  A step models one poll tick during the
/// drain window — the pre-refactor directory ran the purge scan on
/// every poll, so the tick count is deliberately high.
fn expiry<C: CacheOps>(cache: &mut C, n: usize, knobs: &Knobs) -> usize {
    // Population spans [0, n * 10ms); step the clock so the horizon
    // sweeps that span in `expiry_steps` slices.
    let span_ns = n as u64 * 10_000_000;
    let mut purged = 0;
    for step in 1..=knobs.expiry_steps {
        let now = SimTime::from_nanos(TIMEOUT.as_nanos() + span_ns * step / knobs.expiry_steps + 1);
        purged += cache.purge(now);
    }
    purged
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos())
}

struct Row {
    size: usize,
    workload: &'static str,
    legacy_ns: u128,
    indexed_ns: u128,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.legacy_ns as f64 / self.indexed_ns.max(1) as f64
    }
}

fn run_size(n: usize, knobs: &Knobs, rows: &mut Vec<Row>) {
    let space = AddrSpace::new(Ipv4Addr::new(224, 2, 0, 0), n as u32);
    let descs: Vec<SessionDescription> = (0..n).map(|i| session(i, &space)).collect();

    // announce_churn
    let mut legacy = LegacyCache::new(TIMEOUT);
    populate(&mut legacy, &descs);
    let (l_out, legacy_ns) = timed(|| announce_churn(&mut legacy, &descs, knobs));
    let mut indexed = AnnouncementCache::new(TIMEOUT);
    populate(&mut indexed, &descs);
    let (i_out, indexed_ns) = timed(|| announce_churn(&mut indexed, &descs, knobs));
    assert_eq!(l_out, i_out, "churn purge counts diverge");
    black_box(i_out);
    rows.push(Row {
        size: n,
        workload: "announce_churn",
        legacy_ns,
        indexed_ns,
    });

    // allocation_probe (on the churned caches — both hold all n entries)
    let (l_out, legacy_ns) = timed(|| allocation_probe(&legacy, &space, knobs));
    let (i_out, indexed_ns) = timed(|| allocation_probe(&indexed, &space, knobs));
    assert_eq!(l_out, i_out, "probe hit counts diverge");
    black_box(i_out);
    rows.push(Row {
        size: n,
        workload: "allocation_probe",
        legacy_ns,
        indexed_ns,
    });

    // expiry (fresh caches: the churned ones have bunched last_heard)
    let mut legacy = LegacyCache::new(TIMEOUT);
    populate(&mut legacy, &descs);
    let mut indexed = AnnouncementCache::new(TIMEOUT);
    populate(&mut indexed, &descs);
    assert_eq!(
        legacy.digests,
        indexed.digest(),
        "matched digest bookkeeping diverges after populate"
    );
    assert_ne!(
        legacy.digests, [0; 16],
        "populated digests must be non-zero"
    );
    let (l_out, legacy_ns) = timed(|| expiry(&mut legacy, n, knobs));
    let (i_out, indexed_ns) = timed(|| expiry(&mut indexed, n, knobs));
    assert_eq!(l_out, i_out, "expiry purge counts diverge");
    assert_eq!(l_out, n, "expiry must drain the whole cache");
    assert_eq!(
        legacy.digests,
        indexed.digest(),
        "matched digest bookkeeping returns to empty after full drain"
    );
    black_box(i_out);
    rows.push(Row {
        size: n,
        workload: "expiry",
        legacy_ns,
        indexed_ns,
    });
}

/// One pass over the directory's hot receive path: a round of remote
/// announcement traffic through `on_packet`, the node's own announce
/// timers, and the cache-expiry timer — i.e. every code path the
/// telemetry instrumentation touches.  Returns total packets emitted,
/// as a black-box anchor.
fn drive_directory(telemetry_on: bool, packets: &[SapPacket], rounds: u64) -> usize {
    let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 9, 9, 9));
    cfg.space = AddrSpace::new(Ipv4Addr::new(224, 9, 0, 0), 4096);
    let mut dir = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
    dir.set_telemetry_enabled(telemetry_on);
    let mut rng = SimRng::new(17);
    let mut own = Vec::new();
    for i in 0..8 {
        let id = dir
            .create_session(SimTime::ZERO, &format!("own{i}"), 63, media(), &mut rng)
            .expect("allocate own session");
        own.push(id);
    }
    let mut emitted = 0;
    for round in 0..rounds {
        let now = SimTime::from_secs(1 + round);
        for pkt in packets {
            let (out, _) = dir.on_packet(now, pkt, &mut rng);
            emitted += out.len();
        }
        for &id in &own {
            emitted += dir.on_timer(now, TimerKind::Announce(id)).len();
        }
        emitted += dir.on_timer(now, TimerKind::CacheExpiry).len();
    }
    emitted
}

/// Best-of-N interleaved comparison of the directory hot path with
/// telemetry enabled vs disabled.  Interleaving (off, on, off, on, ...)
/// cancels frequency-scaling drift; best-of-N discards scheduler noise.
fn telemetry_overhead(smoke: bool) -> (u128, u128) {
    let (n_remote, rounds, trials) = if smoke { (512, 24, 5) } else { (1024, 48, 7) };
    let space = AddrSpace::new(Ipv4Addr::new(224, 9, 0, 0), 4096);
    let packets: Vec<SapPacket> = (0..n_remote)
        .map(|i| {
            let d = session(i, &space);
            SapPacket::announce(d.origin.address, d.origin.session_id as u16, d.format())
        })
        .collect();

    // Warm-up pass (page in code and allocator state on both sides).
    let expect = drive_directory(false, &packets, rounds);
    assert_eq!(
        drive_directory(true, &packets, rounds),
        expect,
        "telemetry must not change directory behaviour"
    );

    let (mut best_off, mut best_on) = (u128::MAX, u128::MAX);
    for _ in 0..trials {
        let (out, off_ns) = timed(|| drive_directory(false, &packets, rounds));
        black_box(out);
        best_off = best_off.min(off_ns);
        let (out, on_ns) = timed(|| drive_directory(true, &packets, rounds));
        black_box(out);
        best_on = best_on.min(on_ns);
    }
    (best_off, best_on)
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"directory_scale\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"size\": {}, \"workload\": \"{}\", \"legacy_ns\": {}, \"indexed_ns\": {}, \"speedup\": {:.2}}}{}\n",
            r.size,
            r.workload,
            r.legacy_ns,
            r.indexed_ns,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let knobs = if smoke {
        Knobs {
            sizes: vec![10_000],
            churn_rounds: 32,
            churn_per_round: 64,
            probes: 512,
            expiry_steps: 512,
        }
    } else {
        Knobs {
            sizes: vec![10_000, 100_000],
            churn_rounds: 256,
            churn_per_round: 64,
            probes: 2048,
            expiry_steps: 2048,
        }
    };

    let mut rows = Vec::new();
    for &n in &knobs.sizes {
        run_size(n, &knobs, &mut rows);
    }

    println!(
        "{:>8}  {:>17}  {:>12}  {:>12}  {:>8}",
        "size", "workload", "legacy_ms", "indexed_ms", "speedup"
    );
    for r in &rows {
        println!(
            "{:>8}  {:>17}  {:>12.3}  {:>12.3}  {:>7.1}x",
            r.size,
            r.workload,
            r.legacy_ns as f64 / 1e6,
            r.indexed_ns as f64 / 1e6,
            r.speedup(),
        );
    }

    if !smoke {
        let json = render_json(&rows);
        fs::create_dir_all("results_full").expect("create results_full/");
        fs::write("results_full/BENCH_scale.json", &json).expect("write BENCH_scale.json");
        println!("wrote results_full/BENCH_scale.json");
    }

    // Regression gate: the indexed cache must never be slower than the
    // legacy scan on these workloads.
    let regressed: Vec<&Row> = rows.iter().filter(|r| r.speedup() < 1.0).collect();
    if !regressed.is_empty() {
        for r in regressed {
            eprintln!(
                "REGRESSION: {} @ {} — indexed {}ns vs legacy {}ns",
                r.workload, r.size, r.indexed_ns, r.legacy_ns
            );
        }
        std::process::exit(1);
    }

    // Telemetry overhead gate: the instrumented directory hot path must
    // stay within 5% of the uninstrumented one.
    let (off_ns, on_ns) = telemetry_overhead(smoke);
    let ratio = on_ns as f64 / off_ns.max(1) as f64;
    println!(
        "\ntelemetry overhead: off {:.3}ms, on {:.3}ms — ratio {:.3} (bar 1.05)",
        off_ns as f64 / 1e6,
        on_ns as f64 / 1e6,
        ratio,
    );
    if smoke && ratio > 1.05 {
        eprintln!("REGRESSION: telemetry-enabled directory exceeds the 5% overhead bar");
        std::process::exit(1);
    }
}
