//! # sdalloc — Session Directories and Scalable Internet Multicast Address Allocation
//!
//! A full Rust reproduction of Mark Handley's SIGCOMM 1998 paper: the
//! sdr-style session directory, the IPRMA family of multicast address
//! allocation algorithms, the clash detection/recovery protocol, the
//! multicast request–response suppression analysis, and every substrate
//! they need (discrete-event simulation, an Mbone-like topology with
//! DVMRP routing and TTL scoping, SAP/SDP).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`sim`] — deterministic discrete-event engine, RNG, channel models
//! * [`topology`] — Mbone map, Doar generator, routing, scope zones
//! * [`sap`] — SDP/SAP wire formats, announce/listen engine, transports
//! * [`core`] — the allocation algorithms and analytic models
//! * [`rr`] — request–response suppression (analytics + simulation)
//! * [`runtime`] — threaded multi-agent driver, lock-free snapshot reads
//! * [`experiments`] — per-figure experiment runners
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the
//! `experiments` binary to regenerate every figure of the paper.

pub use sdalloc_core as core;
pub use sdalloc_experiments as experiments;
pub use sdalloc_rr as rr;
pub use sdalloc_runtime as runtime;
pub use sdalloc_sap as sap;
pub use sdalloc_sim as sim;
pub use sdalloc_topology as topology;
